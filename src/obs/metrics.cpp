#include "src/obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace micronas::obs {

// ------------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::runtime_error("Histogram bounds must be strictly increasing");
    }
  }
}

void Histogram::observe(double value) {
  // First bucket whose upper bound admits the value ("le" semantics);
  // NaN fails every comparison and lands in +inf by construction.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  std::size_t idx = bounds_.size();
  if (it != bounds_.end() && value <= *it) idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  if (!std::isnan(value)) {
    double expected = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(expected, expected + value, std::memory_order_relaxed)) {
    }
  }
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::percentile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) >= rank && counts[i] > 0) {
      if (i == bounds_.size()) {
        // +inf bucket: report the largest finite bound (or 0 if none).
        return bounds_.empty() ? 0.0 : bounds_.back();
      }
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within = (rank - static_cast<double>(prev)) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::clamp(within, 0.0, 1.0);
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::default_latency_ms_bounds() {
  // ~exponential from 50us to 10s; covers per-op kernel times at the
  // low end and saturated whole-batch serves at the high end.
  return {0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,  10.0,
          25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0};
}

// -------------------------------------------------------- MetricsRegistry

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked: process lifetime
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (slot->bounds() != bounds) {
    throw std::runtime_error("Histogram '" + name + "' re-registered with different bounds");
  }
  return *slot;
}

Histogram& MetricsRegistry::latency_histogram(const std::string& name) {
  return histogram(name, Histogram::default_latency_ms_bounds());
}

json::Json MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  json::JsonObject counters;
  for (const auto& [name, c] : counters_) {
    counters[name] = static_cast<std::size_t>(c->value());
  }
  json::JsonObject gauges;
  for (const auto& [name, g] : gauges_) gauges[name] = g->value();
  json::JsonObject histograms;
  for (const auto& [name, h] : histograms_) {
    json::JsonObject entry;
    json::JsonArray bounds;
    for (double b : h->bounds()) bounds.emplace_back(b);
    json::JsonArray bucket_counts;
    for (std::uint64_t c : h->bucket_counts()) {
      bucket_counts.emplace_back(static_cast<std::size_t>(c));
    }
    entry["bounds"] = std::move(bounds);
    entry["bucket_counts"] = std::move(bucket_counts);
    entry["count"] = static_cast<std::size_t>(h->count());
    entry["sum"] = h->sum();
    entry["p50"] = h->percentile(0.50);
    entry["p90"] = h->percentile(0.90);
    entry["p99"] = h->percentile(0.99);
    histograms[name] = std::move(entry);
  }
  json::JsonObject doc;
  doc["schema_version"] = 1;
  doc["counters"] = std::move(counters);
  doc["gauges"] = std::move(gauges);
  doc["histograms"] = std::move(histograms);
  return json::Json(std::move(doc));
}

void MetricsRegistry::write_json(const std::string& path) const {
  json::save_json_file(to_json(), path);
}

std::string MetricsRegistry::render_table(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto matches = [&prefix](const std::string& name) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  };
  std::ostringstream out;
  out.precision(4);
  for (const auto& [name, c] : counters_) {
    if (matches(name)) out << "  " << name << " = " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    if (matches(name)) out << "  " << name << " = " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    if (!matches(name)) continue;
    out << "  " << name << ": count=" << h->count() << " mean=" << h->mean()
        << " p50=" << h->percentile(0.50) << " p90=" << h->percentile(0.90)
        << " p99=" << h->percentile(0.99) << "\n";
  }
  return out.str();
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace micronas::obs
