#include "src/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>

namespace micronas::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// Single-writer event ring. The owning thread is the only writer;
/// snapshot readers synchronize through `writing` + `head` (see the
/// header's design notes). Slots are written plainly between the two
/// seq_cst `writing` stores, so a reader that observed writing == false
/// after disabling tracing reads fully retired slots only.
struct ThreadRing {
  explicit ThreadRing(int tid_, std::size_t capacity)
      : tid(tid_), mask(capacity - 1), slots(capacity) {}

  const int tid;
  const std::size_t mask;  // capacity - 1, capacity is a power of two
  std::vector<TraceEvent> slots;
  std::atomic<std::uint64_t> head{0};  // total events ever recorded
  std::atomic<bool> writing{false};
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<bool> epoch_set{false};
  SteadyClock::time_point epoch{};
  std::atomic<std::size_t> ring_capacity{std::size_t{1} << 16};

  // Registration only; recording never takes this.
  std::mutex registry_mutex;
  std::vector<std::unique_ptr<ThreadRing>> rings;
};

TraceState& state() {
  static TraceState* s = new TraceState();  // leaked: outlives exiting threads
  return *s;
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

ThreadRing& my_ring() {
  thread_local ThreadRing* ring = nullptr;
  if (ring == nullptr) {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.registry_mutex);
    s.rings.push_back(std::make_unique<ThreadRing>(
        static_cast<int>(s.rings.size()),
        round_up_pow2(std::max<std::size_t>(2, s.ring_capacity.load()))));
    ring = s.rings.back().get();
  }
  return *ring;
}

/// Wait until `ring`'s in-flight record (if any) retires. Correct only
/// after tracing has been disabled: new records abort under the
/// writing flag once they observe enabled == false.
void quiesce(const ThreadRing& ring) {
  while (ring.writing.load(std::memory_order_seq_cst)) {
    // Records are tens of nanoseconds; spinning is cheaper than parking.
  }
}

/// Pin the process-wide epoch on first use (first enable_tracing or
/// first now_us call — executor profiling reads the clock without
/// tracing ever being enabled).
void ensure_epoch(TraceState& s) {
  if (s.epoch_set.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(s.registry_mutex);
  if (!s.epoch_set.load(std::memory_order_relaxed)) {
    s.epoch = SteadyClock::now();
    s.epoch_set.store(true, std::memory_order_release);
  }
}

}  // namespace

void enable_tracing() {
  TraceState& s = state();
  ensure_epoch(s);
  s.enabled.store(true, std::memory_order_seq_cst);
}

void disable_tracing() { state().enabled.store(false, std::memory_order_seq_cst); }

bool tracing_enabled() { return state().enabled.load(std::memory_order_relaxed); }

void set_ring_capacity(std::size_t events) {
  state().ring_capacity.store(round_up_pow2(std::max<std::size_t>(2, events)));
}

double now_us() {
  TraceState& s = state();
  ensure_epoch(s);
  return std::chrono::duration<double, std::micro>(SteadyClock::now() - s.epoch).count();
}

void reset_trace() {
  TraceState& s = state();
  const bool was_enabled = tracing_enabled();
  disable_tracing();
  std::lock_guard<std::mutex> lock(s.registry_mutex);
  for (auto& ring : s.rings) {
    quiesce(*ring);
    ring->head.store(0, std::memory_order_seq_cst);
    for (TraceEvent& e : ring->slots) e = TraceEvent{};
  }
  if (was_enabled) s.enabled.store(true, std::memory_order_seq_cst);
}

namespace detail {

int thread_id() { return my_ring().tid; }

void record(TraceEvent&& event) {
  ThreadRing& ring = my_ring();
  ring.writing.store(true, std::memory_order_seq_cst);
  // Re-check under the flag: a snapshot that disabled tracing and saw
  // writing == false must never have this record land afterwards.
  if (!state().enabled.load(std::memory_order_seq_cst)) {
    ring.writing.store(false, std::memory_order_seq_cst);
    return;
  }
  const std::uint64_t i = ring.head.load(std::memory_order_relaxed);
  event.tid = ring.tid;
  event.seq = i;
  ring.slots[static_cast<std::size_t>(i) & ring.mask] = std::move(event);
  ring.head.store(i + 1, std::memory_order_release);
  ring.writing.store(false, std::memory_order_seq_cst);
}

}  // namespace detail

void Span::finish() {
  const double end = now_us();
  TraceEvent e;
  e.name = name_;
  e.start_us = start_us_;
  e.dur_us = end - start_us_;
  e.tags = std::move(tags_);
  detail::record(std::move(e));
}

std::vector<TraceEvent> snapshot_trace() {
  TraceState& s = state();
  disable_tracing();
  std::vector<TraceEvent> out;
  std::lock_guard<std::mutex> lock(s.registry_mutex);
  for (const auto& ring : s.rings) {
    quiesce(*ring);
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    const std::uint64_t capacity = ring->mask + 1;
    const std::uint64_t first = head > capacity ? head - capacity : 0;
    for (std::uint64_t i = first; i < head; ++i) {
      out.push_back(ring->slots[static_cast<std::size_t>(i) & ring->mask]);
    }
  }
  std::sort(out.begin(), out.end(), [](const TraceEvent& a, const TraceEvent& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.seq < b.seq;
  });
  return out;
}

std::uint64_t dropped_events() {
  TraceState& s = state();
  const bool was_enabled = tracing_enabled();
  disable_tracing();
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(s.registry_mutex);
    for (const auto& ring : s.rings) {
      quiesce(*ring);
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      const std::uint64_t capacity = ring->mask + 1;
      if (head > capacity) dropped += head - capacity;
    }
  }
  if (was_enabled) enable_tracing();
  return dropped;
}

json::Json chrome_trace_json() {
  const std::vector<TraceEvent> events = snapshot_trace();
  json::JsonArray trace_events;
  // Thread-name metadata so Perfetto labels tracks by our stable tids.
  int max_tid = -1;
  for (const TraceEvent& e : events) max_tid = std::max(max_tid, e.tid);
  for (int tid = 0; tid <= max_tid; ++tid) {
    json::JsonObject meta;
    meta["ph"] = "M";
    meta["name"] = "thread_name";
    meta["pid"] = 1;
    meta["tid"] = tid;
    meta["args"] = json::JsonObject{{"name", "micronas-" + std::to_string(tid)}};
    trace_events.emplace_back(std::move(meta));
  }
  for (const TraceEvent& e : events) {
    json::JsonObject obj;
    obj["ph"] = "X";  // complete event: ts + dur in microseconds
    obj["name"] = std::string(e.name);
    obj["ts"] = e.start_us;
    obj["dur"] = e.dur_us;
    obj["pid"] = 1;
    obj["tid"] = e.tid;
    json::JsonObject args;
    args["seq"] = static_cast<std::size_t>(e.seq);
    for (const auto& [key, value] : e.tags) args[key] = value;
    obj["args"] = std::move(args);
    trace_events.emplace_back(std::move(obj));
  }
  json::JsonObject doc;
  doc["displayTimeUnit"] = "ms";
  doc["traceEvents"] = std::move(trace_events);
  return json::Json(std::move(doc));
}

void write_chrome_trace(const std::string& path) {
  json::save_json_file(chrome_trace_json(), path);
}

}  // namespace micronas::obs
