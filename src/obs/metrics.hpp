// Process-wide metrics registry: named counters, gauges and
// fixed-bucket histograms with one JSON dump format.
//
// The registry is the single export path for every subsystem's
// telemetry — server admission counters, eval-engine cache hit rates,
// pass-manager timings, executor op profiles — so tools like
// serve_bench and pareto_sweep print and persist stats through one
// code path instead of each layer growing its own ad-hoc struct dump.
//
// Concurrency model: instrument handles (Counter*/Gauge*/Histogram*)
// are interned once under the registry mutex and then live for the
// process lifetime; updates through a handle are lock-free atomics.
// Hot paths should resolve their handle once (member pointer, static
// local) and call add()/set()/observe() on it — name lookup is for
// registration and export, not the fast path.
//
// Histograms use fixed upper-bound buckets with Prometheus "le"
// semantics: bucket[i] counts observations <= bounds[i], plus an
// implicit +inf bucket, with total count and sum kept alongside so
// means and interpolated percentiles can be derived at export time.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/json.hpp"

namespace micronas::obs {

/// Monotone event count.
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram ("le" upper bounds + implicit +inf).
class Histogram {
 public:
  /// `bounds` must be strictly increasing; NaN observations count
  /// toward the +inf bucket (and the total), not the sum.
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  double mean() const;

  /// Linear interpolation inside the winning bucket, Prometheus
  /// histogram_quantile-style. q in [0, 1]; returns 0 when empty. A
  /// quantile landing in the +inf bucket reports the largest finite
  /// bound (the histogram cannot resolve beyond its range).
  double percentile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last is +inf).
  std::vector<std::uint64_t> bucket_counts() const;

  void reset();

  /// Default latency bounds: 16 roughly-exponential steps from 50us to
  /// 10s — wide enough for both per-op kernels and whole-batch serves.
  static std::vector<double> default_latency_ms_bounds();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  // Sum accumulated via CAS loop — std::atomic<double>::fetch_add is
  // C++20 but not universally lock-free; the loop is portable.
  std::atomic<double> sum_{0.0};
};

/// Name → instrument map. Interning the same name twice returns the
/// same handle (histograms additionally require identical bounds —
/// mismatches throw, catching accidental name collisions).
class MetricsRegistry {
 public:
  /// The process-wide registry used by all subsystems.
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name, std::vector<double> bounds);
  Histogram& latency_histogram(const std::string& name);  // default_latency_ms_bounds

  /// Everything, one deterministic document:
  ///   {"schema_version": 1,
  ///    "counters":   {"serve.accepted": 123, ...},
  ///    "gauges":     {"eval.lut_hit_rate": 0.87, ...},
  ///    "histograms": {"serve.latency_ms":
  ///        {"bounds": [...], "bucket_counts": [...],  // +inf last
  ///         "count": N, "sum": S,
  ///         "p50": ..., "p90": ..., "p99": ...}, ...}}
  json::Json to_json() const;
  void write_json(const std::string& path) const;

  /// Human-readable dump of every instrument whose name starts with
  /// `prefix` (empty = all) — the one table serve_bench and
  /// pareto_sweep both print.
  std::string render_table(const std::string& prefix = "") const;

  /// Zero all instruments (handles stay valid). For tests.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  // std::map: deterministic iteration for to_json/render_table.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace micronas::obs
