// Synthetic mini-batch generation — the stand-in for CIFAR-10/100 and
// ImageNet16-120 images (see DESIGN.md §3.3).
//
// Zero-shot indicators are evaluated at initialization on a single
// mini-batch; they depend on the input distribution's shape and scale,
// not on label semantics. We synthesize class-conditional Gaussian
// images: each class has a random mean image (structured, low
// frequency) and samples add i.i.d. pixel noise, normalized to zero
// mean / unit variance like standard training pipelines.
#pragma once

#include "src/common/rng.hpp"
#include "src/nb201/surrogate.hpp"
#include "src/tensor/tensor.hpp"

namespace micronas {

struct DatasetSpec {
  int channels = 3;
  int height = 32;
  int width = 32;
  int num_classes = 10;
};

/// Canonical input spec of each benchmark dataset.
DatasetSpec dataset_spec(nb201::Dataset d);

struct Batch {
  Tensor images;             // [N, C, H, W]
  std::vector<int> labels;   // size N
};

class SyntheticDataset {
 public:
  SyntheticDataset(DatasetSpec spec, Rng& rng);

  /// Sample a batch of `batch_size` images with balanced random labels.
  Batch sample_batch(int batch_size, Rng& rng) const;

  /// Sample a batch downscaled to `size`×`size` (proxy networks run on
  /// reduced resolution for speed; see CellNetConfig).
  Batch sample_batch_resized(int batch_size, int size, Rng& rng) const;

  const DatasetSpec& spec() const { return spec_; }

 private:
  Tensor class_mean(int cls, int height, int width) const;

  DatasetSpec spec_;
  std::vector<float> class_phases_;  // low-frequency structure per class
};

}  // namespace micronas
