#include "src/data/synthetic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace micronas {

DatasetSpec dataset_spec(nb201::Dataset d) {
  switch (d) {
    case nb201::Dataset::kCifar10: return {3, 32, 32, 10};
    case nb201::Dataset::kCifar100: return {3, 32, 32, 100};
    case nb201::Dataset::kImageNet16: return {3, 16, 16, 120};
  }
  throw std::invalid_argument("dataset_spec: invalid dataset");
}

SyntheticDataset::SyntheticDataset(DatasetSpec spec, Rng& rng) : spec_(spec) {
  if (spec.num_classes <= 0) throw std::invalid_argument("SyntheticDataset: num_classes must be positive");
  // Three random phases per (class, channel) parameterize a smooth
  // low-frequency class template.
  class_phases_.resize(static_cast<std::size_t>(spec.num_classes) * spec.channels * 3);
  rng.fill_uniform(class_phases_, 0.0F, 2.0F * static_cast<float>(std::numbers::pi));
}

Tensor SyntheticDataset::class_mean(int cls, int height, int width) const {
  Tensor mean(Shape{1, spec_.channels, height, width});
  for (int c = 0; c < spec_.channels; ++c) {
    const std::size_t base = (static_cast<std::size_t>(cls) * spec_.channels + c) * 3;
    const float p0 = class_phases_[base];
    const float p1 = class_phases_[base + 1];
    const float p2 = class_phases_[base + 2];
    for (int h = 0; h < height; ++h) {
      for (int w = 0; w < width; ++w) {
        const float u = static_cast<float>(h) / static_cast<float>(height);
        const float v = static_cast<float>(w) / static_cast<float>(width);
        const float val = std::sin(2.0F * static_cast<float>(std::numbers::pi) * u + p0) +
                          std::sin(2.0F * static_cast<float>(std::numbers::pi) * v + p1) +
                          std::sin(2.0F * static_cast<float>(std::numbers::pi) * (u + v) + p2);
        mean.at(0, c, h, w) = 0.5F * val;
      }
    }
  }
  return mean;
}

Batch SyntheticDataset::sample_batch(int batch_size, Rng& rng) const {
  return sample_batch_resized(batch_size, spec_.height, rng);
}

Batch SyntheticDataset::sample_batch_resized(int batch_size, int size, Rng& rng) const {
  if (batch_size <= 0) throw std::invalid_argument("sample_batch: batch_size must be positive");
  if (size <= 0) throw std::invalid_argument("sample_batch: size must be positive");

  Batch batch;
  batch.images = Tensor(Shape{batch_size, spec_.channels, size, size});
  batch.labels.resize(static_cast<std::size_t>(batch_size));

  for (int n = 0; n < batch_size; ++n) {
    const int cls = rng.uniform_int(0, spec_.num_classes - 1);
    batch.labels[static_cast<std::size_t>(n)] = cls;
    const Tensor mean = class_mean(cls, size, size);
    for (int c = 0; c < spec_.channels; ++c) {
      for (int h = 0; h < size; ++h) {
        for (int w = 0; w < size; ++w) {
          batch.images.at(n, c, h, w) =
              mean.at(0, c, h, w) + static_cast<float>(rng.normal(0.0, 0.6));
        }
      }
    }
  }

  // Per-batch standardization, mirroring normalized training inputs.
  auto data = batch.images.data();
  double sum = 0.0, sq = 0.0;
  for (float v : data) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  const double mean = sum / static_cast<double>(data.size());
  const double var = sq / static_cast<double>(data.size()) - mean * mean;
  const float inv_std = static_cast<float>(1.0 / std::sqrt(std::max(var, 1e-12)));
  for (auto& v : data) v = (v - static_cast<float>(mean)) * inv_std;
  return batch;
}

}  // namespace micronas
