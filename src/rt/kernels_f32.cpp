#include "src/rt/kernels_f32.hpp"

#include <cmath>
#include <cstddef>

namespace micronas::rt {

void conv2d_f32(const float* input, const float* weight, const float* bias, float* output,
                int batch, int cin, int h, int w, int cout, int kernel, int stride, int pad,
                int out_h, int out_w, bool fused_relu, ThreadPool* pool) {
  const int npix = out_h * out_w;
  for (int n = 0; n < batch; ++n) {
    const float* in = input + static_cast<std::ptrdiff_t>(n) * cin * h * w;
    float* out = output + static_cast<std::ptrdiff_t>(n) * cout * npix;
    auto channel = [&](std::size_t ci) {
      const int c = static_cast<int>(ci);
      const float* wbase = weight + static_cast<std::ptrdiff_t>(c) * cin * kernel * kernel;
      float* oplane = out + static_cast<std::ptrdiff_t>(c) * npix;
      for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
          float acc = bias ? bias[c] : 0.0F;
          for (int ic = 0; ic < cin; ++ic) {
            const float* plane = in + static_cast<std::ptrdiff_t>(ic) * h * w;
            const float* wk = wbase + static_cast<std::ptrdiff_t>(ic) * kernel * kernel;
            for (int ky = 0; ky < kernel; ++ky) {
              const int iy = oy * stride - pad + ky;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < kernel; ++kx) {
                const int ix = ox * stride - pad + kx;
                if (ix < 0 || ix >= w) continue;
                acc += plane[static_cast<std::ptrdiff_t>(iy) * w + ix] *
                       wk[static_cast<std::ptrdiff_t>(ky) * kernel + kx];
              }
            }
          }
          if (fused_relu && acc < 0.0F) acc = 0.0F;
          oplane[static_cast<std::ptrdiff_t>(oy) * out_w + ox] = acc;
        }
      }
    };
    if (pool && pool->size() > 1 && cout > 1) {
      pool->parallel_for(static_cast<std::size_t>(cout), channel);
    } else {
      for (int c = 0; c < cout; ++c) channel(static_cast<std::size_t>(c));
    }
  }
}

void batch_norm_f32(const float* input, const float* gamma, const float* beta,
                    const float* mean, const float* var, float* output, int batch, int channels,
                    int spatial, double eps) {
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float scale = gamma[c] / std::sqrt(var[c] + static_cast<float>(eps));
      const float shift = beta[c] - mean[c] * scale;
      const float* in = input + (static_cast<std::ptrdiff_t>(n) * channels + c) * spatial;
      float* out = output + (static_cast<std::ptrdiff_t>(n) * channels + c) * spatial;
      for (int i = 0; i < spatial; ++i) out[i] = in[i] * scale + shift;
    }
  }
}

void channel_affine_f32(const float* input, const float* scale, const float* shift,
                        float* output, int batch, int channels, int spatial) {
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float* in = input + (static_cast<std::ptrdiff_t>(n) * channels + c) * spatial;
      float* out = output + (static_cast<std::ptrdiff_t>(n) * channels + c) * spatial;
      for (int i = 0; i < spatial; ++i) out[i] = in[i] * scale[c] + shift[c];
    }
  }
}

void relu_f32(const float* input, float* output, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) output[i] = input[i] > 0.0F ? input[i] : 0.0F;
}

void avg_pool_f32(const float* input, float* output, int batch, int channels, int h, int w,
                  int kernel, int stride, int pad, int out_h, int out_w) {
  const float inv = 1.0F / static_cast<float>(kernel * kernel);  // count_include_pad
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float* plane = input + (static_cast<std::ptrdiff_t>(n) * channels + c) * h * w;
      float* oplane = output + (static_cast<std::ptrdiff_t>(n) * channels + c) * out_h * out_w;
      for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
          float acc = 0.0F;
          for (int ky = 0; ky < kernel; ++ky) {
            const int iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= h) continue;
            for (int kx = 0; kx < kernel; ++kx) {
              const int ix = ox * stride - pad + kx;
              if (ix < 0 || ix >= w) continue;
              acc += plane[static_cast<std::ptrdiff_t>(iy) * w + ix];
            }
          }
          oplane[static_cast<std::ptrdiff_t>(oy) * out_w + ox] = acc * inv;
        }
      }
    }
  }
}

void add_f32(const float* a, const float* b, float* output, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) output[i] = a[i] + b[i];
}

void global_avg_pool_f32(const float* input, float* output, int batch, int channels,
                         int spatial) {
  const float inv = 1.0F / static_cast<float>(spatial);
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const float* plane = input + (static_cast<std::ptrdiff_t>(n) * channels + c) * spatial;
      float acc = 0.0F;
      for (int i = 0; i < spatial; ++i) acc += plane[i];
      output[static_cast<std::ptrdiff_t>(n) * channels + c] = acc * inv;
    }
  }
}

void linear_f32(const float* input, const float* weight, const float* bias, float* output,
                int batch, int in_features, int out_features) {
  for (int n = 0; n < batch; ++n) {
    const float* in = input + static_cast<std::ptrdiff_t>(n) * in_features;
    float* out = output + static_cast<std::ptrdiff_t>(n) * out_features;
    for (int c = 0; c < out_features; ++c) {
      const float* wrow = weight + static_cast<std::ptrdiff_t>(c) * in_features;
      float acc = bias ? bias[c] : 0.0F;
      for (int k = 0; k < in_features; ++k) acc += wrow[k] * in[k];
      out[c] = acc;
    }
  }
}

}  // namespace micronas::rt
