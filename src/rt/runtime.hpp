// Deterministic interpreter runtime for compiled ir::Graphs.
//
// The Executor walks the node list (which is the schedule) and
// dispatches one kernel per node. Two buffer modes:
//
//   * planned  — all activations live in a single static arena laid out
//     by rt/memory_planner.hpp; this is the deployment configuration
//     whose peak the compile report compares against hw/memory_model.
//   * unplanned — every value gets its own allocation; this is the
//     naive reference interpreter used for calibration, numerics
//     validation and as the bench baseline the fused int8 path is
//     measured against.
//
// Float kernels are deliberately naive direct loops (the reference
// semantics); the int8 kernels (kernels_int8.hpp) are the optimized
// deployment path. Integer inference is bit-identical across repeated
// runs and thread counts: convolution channels are independent, and
// every other kernel is single-pass integer arithmetic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/ir/graph.hpp"
#include "src/rt/memory_planner.hpp"

namespace micronas::rt {

struct ExecOptions {
  /// Worker threads for the int8/float convolution channel partition
  /// (1 = serial, 0 = one per hardware thread). Results are
  /// bit-identical for every setting.
  int threads = 1;
};

class Executor {
 public:
  /// Planned mode: activations at the planner's arena offsets.
  Executor(const ir::Graph& graph, const MemoryPlan& plan, ExecOptions options = {});
  /// Unplanned mode: one private buffer per value (naive interpreter).
  explicit Executor(const ir::Graph& graph, ExecOptions options = {});

  /// Execute the graph on `input` (must match the graph input type;
  /// f32). Returns the f32 output (the graph must end in a f32 node).
  Tensor run(const Tensor& input);

  /// Calibration hook: called after each f32-producing step (and for
  /// the input) with the node id and its output values.
  using Observer = std::function<void(int node_id, std::span<const float>)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Arena bytes actually allocated (0 in unplanned mode — buffers are
  /// per-value; see MemoryPlan::naive_bytes for that total).
  long long arena_bytes() const { return static_cast<long long>(arena_.size()); }

 private:
  void prepare();
  std::byte* buffer(int node_id);
  const std::byte* read_buffer(int node_id) const;
  const float* f32_in(int node_id) const;
  const std::int8_t* i8_in(int node_id) const;
  void dispatch(const ir::Node& node);

  const ir::Graph& graph_;
  MemoryPlan plan_;        // empty in unplanned mode
  bool planned_ = false;
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  Observer observer_;

  std::vector<std::byte> arena_;
  std::vector<std::vector<std::byte>> private_buffers_;  // unplanned mode
  std::vector<std::int8_t> columns_;                     // im2col scratch
  // Per-node Σ_k w[c,k] for kQConv2d / kQLinear, computed once.
  std::vector<std::vector<std::int32_t>> weight_sums_;
};

}  // namespace micronas::rt
