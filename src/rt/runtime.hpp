// Deterministic interpreter runtime for compiled ir::Graphs.
//
// The Executor walks the node list (which is the schedule) and
// dispatches one kernel per node. Two buffer modes:
//
//   * planned  — all activations live in a single static arena laid out
//     by rt/memory_planner.hpp; this is the deployment configuration
//     whose peak the compile report compares against hw/memory_model.
//   * unplanned — every value gets its own allocation; this is the
//     naive reference interpreter used for calibration, numerics
//     validation and as the bench baseline the fused int8 path is
//     measured against.
//
// Float kernels are deliberately naive direct loops (the reference
// semantics); the int8 kernels (kernels_int8.hpp) are the optimized
// deployment path. Integer inference is bit-identical across repeated
// runs and thread counts: convolution channels are independent, and
// every other kernel is single-pass integer arithmetic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "src/common/thread_pool.hpp"
#include "src/ir/graph.hpp"
#include "src/rt/kernels_int8_gemm.hpp"
#include "src/rt/memory_planner.hpp"

namespace micronas::rt {

struct ExecOptions {
  /// Worker threads for the int8/float convolution channel partition
  /// (1 = serial, 0 = one per hardware thread). Results are
  /// bit-identical for every setting.
  int threads = 1;
  /// Pre-packed qconv/qlinear weights keyed by this graph's node ids
  /// (compile::CompiledModel::packed, or a package's PACK section) —
  /// must outlive the executor, like the graph. nullptr: the executor
  /// packs on the fly at construction (skipped under MICRONAS_PORTABLE,
  /// where the kernel selector only ever picks the scalar reference).
  const PackedWeightSet* packed = nullptr;
  /// Accumulate per-node wall time into op_profile(). Off by default:
  /// profiling adds two clock reads per node dispatch. Independent of
  /// obs tracing — spans fire whenever tracing is enabled, profiling
  /// only when this is set.
  bool profile = false;
};

/// Per-node runtime attribution. The static facts (op, kernel variant,
/// bytes, strip height) are resolved once at executor construction and
/// double as obs span tags; calls/total_ms accumulate across run()s
/// when ExecOptions::profile is set.
struct OpProfileEntry {
  int node_id = -1;        // -1: node not executed (const/input)
  const char* op = "";     // op_kind_name, static storage
  const char* kernel = ""; // selected kernel variant ("" = fixed-function op)
  long long bytes = 0;     // per-run output + non-const input bytes (batch 1)
  int strip_h = 0;         // row-strip height when stream-scheduled, else 0
  std::uint64_t calls = 0;
  double total_ms = 0.0;
};

class Executor {
 public:
  /// Planned mode: activations at the planner's arena offsets.
  Executor(const ir::Graph& graph, const MemoryPlan& plan, ExecOptions options = {});
  /// Unplanned mode: one private buffer per value (naive interpreter).
  explicit Executor(const ir::Graph& graph, ExecOptions options = {});

  /// Execute the graph on `input` (must match the graph input type;
  /// f32). Returns the f32 output (the graph must end in a f32 node).
  Tensor run(const Tensor& input);

  /// Calibration hook: called after each f32-producing step (and for
  /// the input) with the node id and its output values.
  using Observer = std::function<void(int node_id, std::span<const float>)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  /// Arena bytes actually allocated (0 in unplanned mode — buffers are
  /// per-value; see MemoryPlan::naive_bytes for that total).
  long long arena_bytes() const { return static_cast<long long>(arena_.size()); }

  /// Per-node attribution + accumulated times, indexed by node id
  /// (entries with node_id == -1 were not executed). Times are only
  /// accumulated when ExecOptions::profile is set.
  const std::vector<OpProfileEntry>& op_profile() const { return profile_; }

 private:
  void prepare();
  std::byte* buffer(int node_id);
  const std::byte* read_buffer(int node_id) const;
  const float* f32_in(int node_id) const;
  const std::int8_t* i8_in(int node_id) const;
  void dispatch(const ir::Node& node);

  const ir::Graph& graph_;
  MemoryPlan plan_;        // empty in unplanned mode
  bool planned_ = false;
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  Observer observer_;

  std::vector<std::byte> arena_;
  std::vector<std::vector<std::byte>> private_buffers_;  // unplanned mode
  std::vector<std::int8_t> columns_;                     // im2col scratch
  std::vector<std::int8_t> stream_scratch_;              // row-strip gather + stage
  // Per-node Σ_k w[c,k] for kQConv2d / kQLinear, computed once.
  std::vector<std::vector<std::int32_t>> weight_sums_;
  // Packed weights the kernel selector dispatches on: the caller's set
  // (options.packed) or `owned_packed_` built at construction.
  PackedWeightSet owned_packed_;
  const PackedWeightSet* packed_ = nullptr;
  std::vector<OpProfileEntry> profile_;  // indexed by node id
};

/// One coalesced batch = ONE executor invocation.
///
/// Compiles a batch-1 graph at batch capacity N: every activation
/// buffer (and the arena, planned with MemoryPlanOptions::batch) holds
/// N samples, batched qconv/qlinear widen the int8-GEMM M dimension
/// instead of looping the graph, and every other kernel broadcasts
/// over the batch axis (independent samples, partitioned over the
/// thread pool). A partial batch of n < N runs the same plan with a
/// smaller effective M — each buffer simply uses its first n sample
/// slots.
///
/// Bit-identity guarantee: sample i of run_batch({x0.., xi, ..}) is
/// bit-identical to Executor::run(xi) for every batch size, thread
/// count and slot position, because every per-sample accumulation
/// order is unchanged from the batch-1 path (asserted by
/// tests/test_batched_executor.cpp).
class BatchedExecutor {
 public:
  /// Plans its own arena at `batch_capacity` (batch-scaled liveness).
  BatchedExecutor(const ir::Graph& graph, int batch_capacity, ExecOptions options = {},
                  MemoryPlanOptions plan_options = {});
  /// Uses a caller-provided batch-capacity plan (typically
  /// compile::CompiledModel::plan_for_batch). Throws
  /// std::invalid_argument if any placement is not batch_capacity
  /// times its per-sample value size.
  BatchedExecutor(const ir::Graph& graph, MemoryPlan plan, int batch_capacity,
                  ExecOptions options = {});

  /// Execute 1..batch_capacity() inputs (each of the graph's input
  /// shape) in one graph walk; result i is the logits of input i.
  std::vector<Tensor> run_batch(std::span<const Tensor* const> inputs);
  std::vector<Tensor> run_batch(std::span<const Tensor> inputs);
  /// Single-sample convenience (a batch of one).
  Tensor run(const Tensor& input);

  int batch_capacity() const { return capacity_; }
  long long arena_bytes() const { return static_cast<long long>(arena_.size()); }

  /// Per-node attribution + accumulated times across run_batch calls
  /// (see Executor::op_profile; bytes are per sample).
  const std::vector<OpProfileEntry>& op_profile() const { return profile_; }

  /// Bytes a broadcast op's dispatch actually touches per sample:
  /// output bytes plus every non-const input's bytes, in the op's real
  /// dtype (an int8 op of N elements is N bytes, a f32 op 4N) — the
  /// unit each_sample's gate compares against kMinParallelSampleBytes.
  /// Compute-bound ops (f32 conv / linear) report kHeavySample: their
  /// per-element cost dwarfs the memory traffic, so they always cross
  /// the gate.
  static std::size_t sample_io_bytes(const ir::Graph& graph, const ir::Node& node);
  /// each_sample's pool-dispatch threshold: below this many bytes
  /// touched per sample the serial loop is strictly faster.
  static constexpr std::size_t kMinParallelSampleBytes = 32u * 1024u;
  /// sample_io_bytes result for compute-bound ops: always parallelize.
  static constexpr std::size_t kHeavySample = ~std::size_t{0};

 private:
  void prepare();
  std::byte* buffer(int node_id);
  const std::byte* read_buffer(int node_id) const;
  void dispatch(const ir::Node& node, int n);
  /// Run fn(sample) for samples [0, n): over the pool when each
  /// sample's work (`sample_bytes` touched per sample, from
  /// sample_io_bytes) is large enough to amortize a pool dispatch, else
  /// a plain loop — samples are independent, so the split cannot change
  /// results.
  void each_sample(int n, std::size_t sample_bytes, const std::function<void(int)>& fn);

  const ir::Graph& graph_;
  MemoryPlan plan_;
  int capacity_;
  ExecOptions options_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::byte> arena_;
  std::vector<std::int8_t> columns_;  // im2col scratch at batch capacity
  std::vector<std::int8_t> stream_scratch_;  // row-strip gather + stage (one sample)
  std::vector<std::vector<std::int32_t>> weight_sums_;
  PackedWeightSet owned_packed_;
  const PackedWeightSet* packed_ = nullptr;
  std::vector<OpProfileEntry> profile_;  // indexed by node id
};

}  // namespace micronas::rt
