// Naive float reference kernels (direct loops, no blocking, no
// vectorization beyond what the compiler finds).
//
// These define the semantics the compile passes must preserve and the
// baseline the int8 deployment path is benchmarked against. The
// constant folder (src/compile/passes.cpp) calls them at compile time
// to evaluate all-constant subgraphs, so compile-time and run-time
// folding agree bit for bit.
#pragma once

#include "src/common/thread_pool.hpp"

namespace micronas::rt {

void conv2d_f32(const float* input, const float* weight, const float* bias, float* output,
                int batch, int cin, int h, int w, int cout, int kernel, int stride, int pad,
                int out_h, int out_w, bool fused_relu, ThreadPool* pool);

void batch_norm_f32(const float* input, const float* gamma, const float* beta,
                    const float* mean, const float* var, float* output, int batch, int channels,
                    int spatial, double eps);

void channel_affine_f32(const float* input, const float* scale, const float* shift,
                        float* output, int batch, int channels, int spatial);

void relu_f32(const float* input, float* output, std::size_t n);

void avg_pool_f32(const float* input, float* output, int batch, int channels, int h, int w,
                  int kernel, int stride, int pad, int out_h, int out_w);

void add_f32(const float* a, const float* b, float* output, std::size_t n);

void global_avg_pool_f32(const float* input, float* output, int batch, int channels,
                         int spatial);

void linear_f32(const float* input, const float* weight, const float* bias, float* output,
                int batch, int in_features, int out_features);

}  // namespace micronas::rt
