// Integer reference kernels for the int8 deployment path.
//
// All arithmetic is integer-exact: int8 operands, int32 accumulators,
// and fixed-point requantization through hw/quant's gemmlowp-style
// multiplier — so outputs are bit-identical across runs, thread counts
// and hosts. Convolution goes through im2col + an int8 GEMM whose inner
// dot product is contiguous in both operands (the CMSIS-NN shape), and
// is partitioned over output channels when a thread pool is provided;
// channels are fully independent, so the partition cannot change the
// result.
//
// Batching widens the GEMM M dimension instead of looping the kernel:
// qconv2d im2cols every sample into one column matrix of batch * Ho*Wo
// rows and runs a single channel-partitioned GEMM over all of them —
// so a batch of N is one kernel invocation, and per-(sample, channel,
// pixel) accumulation order is unchanged from the batch-1 path (bit
// identity of batched vs serial execution rests on this).
//
// Zero-point convention (TFLite): real = scale * (q - zero_point).
// Padding contributes real 0.0, i.e. q == zero_point, so padded cells
// drop out of (q - zp) sums and the kernels simply skip them.
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/common/thread_pool.hpp"

namespace micronas::rt {

/// Partition the flat (sample-major, unit-minor) grid of `batch *
/// units` independent work items over the pool, calling fn(n, u_begin,
/// u_end) for each sample-contiguous unit range of a block. Folding
/// batch into the grain keeps all workers busy even when one dimension
/// is small (e.g. a stem conv's 16 channels at batch 32, or a batched
/// final linear layer). Blocks never split a (sample, unit) item and
/// each item's accumulation order is untouched, so the partition cannot
/// change results. Serial (one call per sample) when the pool is absent
/// or single-lane.
template <typename Fn>
void for_sample_units(int batch, int units, ThreadPool* pool, Fn&& fn) {
  const long long total = static_cast<long long>(batch) * units;
  if (total <= 0) return;
  // Two blocks per worker: units cost roughly the same, so this is
  // enough slack to rebalance around external load without paying
  // dispatch overhead for a long tail of tiny tasks.
  const long long nblocks =
      (pool && pool->size() > 1 && total > 1)
          ? std::min<long long>(total, static_cast<long long>(pool->size()) * 2)
          : 1;
  auto run_block = [&](long long b) {
    const long long lo = total * b / nblocks;
    const long long hi = total * (b + 1) / nblocks;
    long long t = lo;
    while (t < hi) {
      const int n = static_cast<int>(t / units);
      const int u_begin = static_cast<int>(t % units);
      const long long sample_end = static_cast<long long>(n + 1) * units;
      const long long stop = std::min(hi, sample_end);
      fn(n, u_begin, static_cast<int>(stop - static_cast<long long>(n) * units));
      t = stop;
    }
  };
  if (nblocks == 1) {
    run_block(0);
    return;
  }
  pool->parallel_for(static_cast<std::size_t>(nblocks),
                     [&](std::size_t b) { run_block(static_cast<long long>(b)); });
}

/// im2col for int8 NCHW input, one sample: columns[pixel][cin*k*k],
/// row-contiguous per output pixel, padding filled with `pad_value`
/// (the input zero point). `columns` must hold out_h*out_w*cin*k*k.
void im2col_i8(const std::int8_t* input, int cin, int h, int w, int kernel, int stride, int pad,
               int out_h, int out_w, std::int8_t pad_value, std::int8_t* columns);

struct QConv2dArgs {
  int batch = 1;
  int cin = 0, h = 0, w = 0;
  int cout = 0, kernel = 1, stride = 1, pad = 0;
  int out_h = 0, out_w = 0;
  int in_zp = 0, out_zp = 0;
  bool fused_relu = false;
  const std::int8_t* input = nullptr;    // [N, Cin, H, W]
  const std::int8_t* weight = nullptr;   // [Cout, Cin, K, K]
  const std::int32_t* bias = nullptr;    // [Cout] or null
  const std::int32_t* weight_sum = nullptr;  // [Cout]: Σ_k w[c,k] (precomputed)
  const std::int32_t* mantissa = nullptr;    // [Cout] per-channel requant
  const int* shift = nullptr;                // [Cout]
  std::int8_t* columns = nullptr;        // scratch, batch*out_h*out_w*cin*k*k
  std::int8_t* output = nullptr;         // [N, Cout, Ho, Wo]
};

void qconv2d(const QConv2dArgs& args, ThreadPool* pool);

struct QLinearArgs {
  int batch = 1;
  int in_features = 0, out_features = 0;
  int in_zp = 0, out_zp = 0;
  const std::int8_t* input = nullptr;    // [N, F]
  const std::int8_t* weight = nullptr;   // [Out, F]
  const std::int32_t* bias = nullptr;
  const std::int32_t* weight_sum = nullptr;
  const std::int32_t* mantissa = nullptr;
  const int* shift = nullptr;
  std::int8_t* output = nullptr;         // [N, Out]
};

/// Partitioned over the flat (batch, out_features) grid when a pool is
/// provided — outputs are independent, so results are bit-identical
/// for every thread count.
void qlinear(const QLinearArgs& args, ThreadPool* pool = nullptr);

/// out = clamp(zp_out + M_a(a - zp_a) + M_b(b - zp_b)).
void qadd(const std::int8_t* a, const std::int8_t* b, std::int8_t* out, std::size_t n,
          int zp_a, std::int32_t mant_a, int shift_a, int zp_b, std::int32_t mant_b, int shift_b,
          int zp_out);

/// Average pooling, count_include_pad: divisor k*k, padded cells
/// contribute q == zp_in and drop out of the shifted sum.
void qavg_pool(const std::int8_t* input, std::int8_t* output, int batch, int channels, int h,
               int w, int kernel, int stride, int pad, int out_h, int out_w, int in_zp,
               std::int32_t mantissa, int shift, int out_zp);

/// Global average pooling [N,C,H,W] -> [N,C].
void qglobal_avg_pool(const std::int8_t* input, std::int8_t* output, int batch, int channels,
                      int h, int w, int in_zp, std::int32_t mantissa, int shift, int out_zp);

/// max(q, zero_point) — ReLU when input and output share parameters.
void qrelu(const std::int8_t* input, std::int8_t* output, std::size_t n, int zp);

void quantize_buffer(const float* input, std::int8_t* output, std::size_t n, double scale,
                     int zp);
void dequantize_buffer(const std::int8_t* input, float* output, std::size_t n, double scale,
                       int zp);

}  // namespace micronas::rt
