#include "src/rt/kernels_int8.hpp"

#include <algorithm>
#include <cmath>

#include "src/hw/quant.hpp"

namespace micronas::rt {

namespace {

inline std::int8_t clamp_i8(std::int32_t v, int lo) {
  return static_cast<std::int8_t>(std::clamp<std::int32_t>(v, lo, kInt8Max));
}

}  // namespace

void im2col_i8(const std::int8_t* input, int cin, int h, int w, int kernel, int stride, int pad,
               int out_h, int out_w, std::int8_t pad_value, std::int8_t* columns) {
  const int patch = cin * kernel * kernel;
  for (int oy = 0; oy < out_h; ++oy) {
    for (int ox = 0; ox < out_w; ++ox) {
      std::int8_t* col = columns + (static_cast<std::ptrdiff_t>(oy) * out_w + ox) * patch;
      int k = 0;
      for (int c = 0; c < cin; ++c) {
        const std::int8_t* plane = input + static_cast<std::ptrdiff_t>(c) * h * w;
        for (int ky = 0; ky < kernel; ++ky) {
          const int iy = oy * stride - pad + ky;
          for (int kx = 0; kx < kernel; ++kx) {
            const int ix = ox * stride - pad + kx;
            col[k++] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                           ? plane[static_cast<std::ptrdiff_t>(iy) * w + ix]
                           : pad_value;
          }
        }
      }
    }
  }
}

void qconv2d(const QConv2dArgs& a, ThreadPool* pool) {
  const int patch = a.cin * a.kernel * a.kernel;
  const int npix = a.out_h * a.out_w;
  const int relu_lo = a.fused_relu ? std::max(kInt8Min, a.out_zp) : kInt8Min;

  // All samples' pixels into one column matrix: the GEMM M dimension is
  // batch * npix, so a coalesced batch is one channel-partitioned GEMM
  // (one pool dispatch per conv, not one per sample) and a channel's
  // weight row is reused across the whole batch.
  for (int n = 0; n < a.batch; ++n) {
    const std::int8_t* in =
        a.input + static_cast<std::ptrdiff_t>(n) * a.cin * a.h * a.w;
    im2col_i8(in, a.cin, a.h, a.w, a.kernel, a.stride, a.pad, a.out_h, a.out_w,
              static_cast<std::int8_t>(a.in_zp),
              a.columns + static_cast<std::ptrdiff_t>(n) * npix * patch);
  }

  // Channel-blocked GEMM over the flat (sample, channel) grid —
  // folding batch into the grain keeps every worker busy even when
  // cout alone is smaller than the pool (the stem conv at batch N).
  // Blocks are sample-major, so one sample's columns (npix * patch
  // bytes) stay cache-hot while a block's channels sweep them. The
  // per-output accumulation order is exactly the batch-1 order, so
  // results stay bit-identical across batch sizes, block counts and
  // thread counts.
  for_sample_units(a.batch, a.cout, pool, [&](int n, int c_begin, int c_end) {
    const std::int8_t* cols = a.columns + static_cast<std::ptrdiff_t>(n) * npix * patch;
    for (int c = c_begin; c < c_end; ++c) {
      const std::int8_t* wrow = a.weight + static_cast<std::ptrdiff_t>(c) * patch;
      // acc = Σ_k w*q - zp*Σ_k w (+ bias): padding cells hold q == zp,
      // so the correction term works uniformly across the border.
      const std::int32_t base =
          (a.bias ? a.bias[c] : 0) - a.in_zp * a.weight_sum[c];
      std::int8_t* orow =
          a.output + (static_cast<std::ptrdiff_t>(n) * a.cout + c) * npix;
      for (int j = 0; j < npix; ++j) {
        const std::int8_t* col = cols + static_cast<std::ptrdiff_t>(j) * patch;
        std::int32_t acc = base;
        for (int k = 0; k < patch; ++k) {
          acc += static_cast<std::int32_t>(wrow[k]) * static_cast<std::int32_t>(col[k]);
        }
        const std::int32_t q =
            multiply_by_quantized_multiplier(acc, a.mantissa[c], a.shift[c]) + a.out_zp;
        orow[j] = clamp_i8(q, relu_lo);
      }
    }
  });
}

void qlinear(const QLinearArgs& a, ThreadPool* pool) {
  // Same flat (sample, out_feature) partition as qconv2d: at batch N
  // the final-layer GEMM is N * out_features independent dot products,
  // so the batched path parallelizes instead of running serial.
  for_sample_units(a.batch, a.out_features, pool, [&](int n, int c_begin, int c_end) {
    const std::int8_t* in = a.input + static_cast<std::ptrdiff_t>(n) * a.in_features;
    std::int8_t* out = a.output + static_cast<std::ptrdiff_t>(n) * a.out_features;
    for (int c = c_begin; c < c_end; ++c) {
      const std::int8_t* wrow = a.weight + static_cast<std::ptrdiff_t>(c) * a.in_features;
      std::int32_t acc = (a.bias ? a.bias[c] : 0) - a.in_zp * a.weight_sum[c];
      for (int k = 0; k < a.in_features; ++k) {
        acc += static_cast<std::int32_t>(wrow[k]) * static_cast<std::int32_t>(in[k]);
      }
      const std::int32_t q =
          multiply_by_quantized_multiplier(acc, a.mantissa[c], a.shift[c]) + a.out_zp;
      out[c] = clamp_i8(q, kInt8Min);
    }
  });
}

void qadd(const std::int8_t* a, const std::int8_t* b, std::int8_t* out, std::size_t n,
          int zp_a, std::int32_t mant_a, int shift_a, int zp_b, std::int32_t mant_b, int shift_b,
          int zp_out) {
  // Each operand's rescale depends only on its own int8 value, so for
  // long tensors precompute both 256-entry requant tables with the
  // exact per-element function and reduce the loop to two loads, an
  // add and a clamp. Results are bit-identical to the direct loop by
  // construction; the 512 table builds amortize once n clears them.
  if (n >= 2 * 256) {
    std::int32_t lut_a[256];
    std::int32_t lut_b[256];
    for (int q = 0; q < 256; ++q) {
      lut_a[q] = multiply_by_quantized_multiplier(q - 128 - zp_a, mant_a, shift_a);
      lut_b[q] = multiply_by_quantized_multiplier(q - 128 - zp_b, mant_b, shift_b);
    }
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t ta = lut_a[static_cast<std::int32_t>(a[i]) + 128];
      const std::int32_t tb = lut_b[static_cast<std::int32_t>(b[i]) + 128];
      out[i] = clamp_i8(ta + tb + zp_out, kInt8Min);
    }
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t ta =
        multiply_by_quantized_multiplier(static_cast<std::int32_t>(a[i]) - zp_a, mant_a, shift_a);
    const std::int32_t tb =
        multiply_by_quantized_multiplier(static_cast<std::int32_t>(b[i]) - zp_b, mant_b, shift_b);
    out[i] = clamp_i8(ta + tb + zp_out, kInt8Min);
  }
}

void qavg_pool(const std::int8_t* input, std::int8_t* output, int batch, int channels, int h,
               int w, int kernel, int stride, int pad, int out_h, int out_w, int in_zp,
               std::int32_t mantissa, int shift, int out_zp) {
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const std::int8_t* plane =
          input + (static_cast<std::ptrdiff_t>(n) * channels + c) * h * w;
      std::int8_t* oplane =
          output + (static_cast<std::ptrdiff_t>(n) * channels + c) * out_h * out_w;
      for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
          std::int32_t acc = 0;
          for (int ky = 0; ky < kernel; ++ky) {
            const int iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= h) continue;  // pad: (q - zp) == 0
            for (int kx = 0; kx < kernel; ++kx) {
              const int ix = ox * stride - pad + kx;
              if (ix < 0 || ix >= w) continue;
              acc += static_cast<std::int32_t>(plane[static_cast<std::ptrdiff_t>(iy) * w + ix]) -
                     in_zp;
            }
          }
          const std::int32_t q =
              multiply_by_quantized_multiplier(acc, mantissa, shift) + out_zp;
          oplane[static_cast<std::ptrdiff_t>(oy) * out_w + ox] = clamp_i8(q, kInt8Min);
        }
      }
    }
  }
}

void qglobal_avg_pool(const std::int8_t* input, std::int8_t* output, int batch, int channels,
                      int h, int w, int in_zp, std::int32_t mantissa, int shift, int out_zp) {
  for (int n = 0; n < batch; ++n) {
    for (int c = 0; c < channels; ++c) {
      const std::int8_t* plane =
          input + (static_cast<std::ptrdiff_t>(n) * channels + c) * h * w;
      std::int32_t acc = 0;
      for (int i = 0; i < h * w; ++i) acc += static_cast<std::int32_t>(plane[i]) - in_zp;
      const std::int32_t q = multiply_by_quantized_multiplier(acc, mantissa, shift) + out_zp;
      output[static_cast<std::ptrdiff_t>(n) * channels + c] = clamp_i8(q, kInt8Min);
    }
  }
}

void qrelu(const std::int8_t* input, std::int8_t* output, std::size_t n, int zp) {
  const auto lo = static_cast<std::int8_t>(std::max(kInt8Min, zp));
  for (std::size_t i = 0; i < n; ++i) output[i] = std::max(input[i], lo);
}

void quantize_buffer(const float* input, std::int8_t* output, std::size_t n, double scale,
                     int zp) {
  const AffineParams p{scale, zp};
  for (std::size_t i = 0; i < n; ++i) output[i] = quantize_one(input[i], p);
}

void dequantize_buffer(const std::int8_t* input, float* output, std::size_t n, double scale,
                       int zp) {
  const AffineParams p{scale, zp};
  for (std::size_t i = 0; i < n; ++i) output[i] = dequantize_one(input[i], p);
}

}  // namespace micronas::rt
