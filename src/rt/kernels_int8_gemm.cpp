#include "src/rt/kernels_int8_gemm.hpp"

#include <algorithm>
#include <cstring>

#include "src/hw/quant.hpp"
#include "src/ir/graph.hpp"

// Function multiversioning for the hot loops: the build stays baseline
// x86-64 (runs anywhere), but the GEMM cores are additionally compiled
// for wider SIMD levels and dispatched once at load time via the ELF
// ifunc mechanism — vectorization without making the binary
// ISA-specific. The attribute only affects code generation of the
// annotated function (inlined callees included); the arithmetic is the
// same exact int32 accumulation in every clone, so outputs are
// bit-identical across ISA levels. Off under MICRONAS_PORTABLE and on
// toolchains/targets without the feature. (GCC spells AVX-512 targets
// "arch=x86-64-v4"; clang spells them as plain features.) Also off
// under TSan: the ifunc resolvers run during relocation, before the
// TSan runtime initializes, and crash at program startup — and the CI
// tsan job runs this TU's property suite.
#if defined(__SANITIZE_THREAD__)
#define MICRONAS_NO_SIMD_CLONES 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MICRONAS_NO_SIMD_CLONES 1
#endif
#endif

#if defined(MICRONAS_NO_SIMD_CLONES) || defined(MICRONAS_PORTABLE)
#define MICRONAS_SIMD_CLONES
#elif defined(__x86_64__) && defined(__ELF__) && defined(__clang__)
#define MICRONAS_SIMD_CLONES __attribute__((target_clones("default", "avx2", "avx512bw")))
#elif defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__)
#define MICRONAS_SIMD_CLONES \
  __attribute__((target_clones("default", "arch=x86-64-v3", "arch=x86-64-v4")))
#else
#define MICRONAS_SIMD_CLONES
#endif

namespace micronas::rt {

namespace {

inline std::int8_t clamp_i8(std::int32_t v, int lo) {
  return static_cast<std::int8_t>(std::clamp<std::int32_t>(v, lo, kInt8Max));
}

/// Per-call requantization context shared by conv and linear: the
/// affine correction folded into the accumulator base plus the
/// per-channel fixed-point multipliers.
struct Requant {
  const std::int32_t* bias;        // [cout] or null
  const std::int32_t* weight_sum;  // [cout]
  const std::int32_t* mantissa;    // [cout]
  const int* shift;                // [cout]
  int in_zp = 0;
  int out_zp = 0;
  int relu_lo = kInt8Min;

  std::int32_t base(int c) const {
    return (bias ? bias[c] : 0) - in_zp * weight_sum[c];
  }
  std::int8_t store(std::int32_t acc, int c) const {
    const std::int32_t q =
        multiply_by_quantized_multiplier(acc + base(c), mantissa[c], shift[c]) + out_zp;
    return clamp_i8(q, relu_lo);
  }
};

inline Requant conv_requant(const QConv2dArgs& a) {
  Requant rq{a.bias, a.weight_sum, a.mantissa, a.shift, a.in_zp, a.out_zp, kInt8Min};
  if (a.fused_relu) rq.relu_lo = std::max(kInt8Min, a.out_zp);
  return rq;
}

// ------------------------------------------------------ im2col (int16)

/// Widen one int8 input plane into an int16 image with a `pad`-cell
/// zero-point border. The border IS the conv padding: downstream
/// copies index it like any interior pixel, so the im2col proper has
/// no bounds checks, and a padded cell contributes zp * w — exactly
/// what the scalar reference computes (the -in_zp * weight_sum requant
/// correction assumes padded cells hold zp, not 0).
void widen_plane_padded(const std::int8_t* src, std::int16_t* dst, int h, int w, int pad,
                        std::int16_t zp) {
  const int wp = w + 2 * pad;
  const int hp = h + 2 * pad;
  if (pad > 0) {
    std::fill(dst, dst + static_cast<std::ptrdiff_t>(pad) * wp, zp);
    std::fill(dst + static_cast<std::ptrdiff_t>(hp - pad) * wp,
              dst + static_cast<std::ptrdiff_t>(hp) * wp, zp);
  }
  for (int y = 0; y < h; ++y) {
    std::int16_t* row = dst + static_cast<std::ptrdiff_t>(y + pad) * wp;
    const std::int8_t* srow = src + static_cast<std::ptrdiff_t>(y) * w;
    for (int x = 0; x < pad; ++x) row[x] = zp;
    for (int x = 0; x < w; ++x) row[pad + x] = srow[x];
    for (int x = 0; x < pad; ++x) row[pad + w + x] = zp;
  }
}

/// Build the int16 GEMM operand columns [col_begin, col_end): column j
/// holds output pixel j's patch in (ci, ky, kx) order — the canonical
/// weight-row order — padded with zeros to `patchp`. Off the padded
/// image every (ci, ky) run of `kernel` int16s is contiguous, so the
/// inner step is a small fixed-size copy, not per-element bounds
/// arithmetic. Templated on the kernel size: with K a constant the
/// per-run memcpy lowers to a couple of inline moves instead of a
/// libc call with a runtime length — the call overhead (cin * K per
/// column) otherwise costs more than the GEMM itself saves.
template <int K>
void im2col16_k(const std::int16_t* image, std::int16_t* columns, int cin, int hp, int wp,
                int kernel, int stride, int out_w, int patchp, int col_begin, int col_end) {
  const int k = K > 0 ? K : kernel;
  const int patch = cin * k * k;
  for (int col = col_begin; col < col_end; ++col) {
    const int iy0 = (col / out_w) * stride;
    const int ix0 = (col % out_w) * stride;
    std::int16_t* dst = columns + static_cast<std::ptrdiff_t>(col) * patchp;
    int t = 0;
    for (int ci = 0; ci < cin; ++ci) {
      const std::int16_t* plane = image + static_cast<std::ptrdiff_t>(ci) * hp * wp;
      for (int ky = 0; ky < k; ++ky, t += k) {
        std::memcpy(dst + t, plane + static_cast<std::ptrdiff_t>(iy0 + ky) * wp + ix0,
                    static_cast<std::size_t>(k) * sizeof(std::int16_t));
      }
    }
    for (t = patch; t < patchp; ++t) dst[t] = 0;
  }
}

void im2col16(const std::int16_t* image, std::int16_t* columns, int cin, int hp, int wp,
              int kernel, int stride, int out_w, int patchp, int col_begin, int col_end) {
  switch (kernel) {
    case 1:
      return im2col16_k<1>(image, columns, cin, hp, wp, kernel, stride, out_w, patchp,
                           col_begin, col_end);
    case 3:
      return im2col16_k<3>(image, columns, cin, hp, wp, kernel, stride, out_w, patchp,
                           col_begin, col_end);
    case 5:
      return im2col16_k<5>(image, columns, cin, hp, wp, kernel, stride, out_w, patchp,
                           col_begin, col_end);
    case 7:
      return im2col16_k<7>(image, columns, cin, hp, wp, kernel, stride, out_w, patchp,
                           col_begin, col_end);
    default:
      return im2col16_k<0>(image, columns, cin, hp, wp, kernel, stride, out_w, patchp,
                           col_begin, col_end);
  }
}

// ------------------------------------------------------- dot16 kernels

/// The GEMM core: one exact int32 dot product per (channel, column)
/// over the padded K dimension, both operands contiguous int16 — the
/// shape the vectorizer lowers to vpmaddwd (2 MACs/lane/instruction).
/// K runs ascending, the scalar reference's (ci, ky, kx) order, and
/// int32 accumulation is exact, so any vector re-association still
/// produces the identical sum. A column's operand stays L1-hot across
/// the whole channel loop. Output element (c, j) lands at
/// out[c * cstride + j * jstride] — the two strides are what let one
/// core serve both qconv (cstride = npix, jstride = 1; columns are
/// output pixels) and qlinear (cstride = 1, jstride = out_features;
/// columns are batch samples).
MICRONAS_SIMD_CLONES
void qdot16_block(const std::int16_t* w16, const std::int16_t* columns, int patchp, int cout,
                  const Requant& rq, std::int8_t* out, std::ptrdiff_t cstride,
                  std::ptrdiff_t jstride, int col_begin, int col_end) {
  for (int j = col_begin; j < col_end; ++j) {
    const std::int16_t* aj = columns + static_cast<std::ptrdiff_t>(j) * patchp;
    std::int8_t* oj = out + static_cast<std::ptrdiff_t>(j) * jstride;
    for (int c = 0; c < cout; ++c) {
      const std::int16_t* wc = w16 + static_cast<std::ptrdiff_t>(c) * patchp;
      std::int32_t acc = 0;
      for (int k = 0; k < patchp; ++k) {
        acc += static_cast<std::int32_t>(wc[k]) * static_cast<std::int32_t>(aj[k]);
      }
      oj[static_cast<std::ptrdiff_t>(c) * cstride] = rq.store(acc, c);
    }
  }
}

/// im2col + dot16 GEMM. Two parallel phases over the shared scratch in
/// args.columns (sized by the executor via qconv_gemm_scratch_bytes):
/// first every input plane is widened into its padded int16 image,
/// then each worker builds and immediately consumes its own range of
/// operand columns while they are cache-hot. Both phases partition
/// disjoint output ranges, so the schedule cannot affect results.
void qconv2d_gemm(const QConv2dArgs& a, const PackedWeights& pw, ThreadPool* pool) {
  const int hp = a.h + 2 * a.pad;
  const int wp = a.w + 2 * a.pad;
  const int npix = a.out_h * a.out_w;
  const int patchp = pw.padded_patch();
  const std::size_t image_elems = static_cast<std::size_t>(a.cin) * hp * wp;
  const std::size_t column_elems = static_cast<std::size_t>(npix) * patchp;
  std::int16_t* image0 = reinterpret_cast<std::int16_t*>(a.columns);
  std::int16_t* columns0 = image0 + static_cast<std::size_t>(a.batch) * image_elems;

  for_sample_units(a.batch, a.cin, pool, [&](int n, int ci_begin, int ci_end) {
    const std::int8_t* in = a.input + (static_cast<std::ptrdiff_t>(n) * a.cin + ci_begin) *
                                          a.h * a.w;
    std::int16_t* image = image0 + n * image_elems +
                          static_cast<std::size_t>(ci_begin) * hp * wp;
    for (int ci = ci_begin; ci < ci_end; ++ci) {
      widen_plane_padded(in, image, a.h, a.w, a.pad, static_cast<std::int16_t>(a.in_zp));
      in += a.h * a.w;
      image += static_cast<std::size_t>(hp) * wp;
    }
  });

  const Requant rq = conv_requant(a);
  for_sample_units(a.batch, npix, pool, [&](int n, int col_begin, int col_end) {
    const std::int16_t* image = image0 + n * image_elems;
    std::int16_t* columns = columns0 + n * column_elems;
    std::int8_t* out = a.output + static_cast<std::ptrdiff_t>(n) * a.cout * npix;
    im2col16(image, columns, a.cin, hp, wp, a.kernel, a.stride, a.out_w, patchp, col_begin,
             col_end);
    qdot16_block(pw.data.data(), columns, patchp, a.cout, rq, out, /*cstride=*/npix,
                 /*jstride=*/1, col_begin, col_end);
  });
}

/// 1x1 / stride 1 / pad 0 convolution straight off the NCHW input — the
/// im2col matrix would be a pure transpose copy of the input, so skip
/// it: out[c][j] = Σ_ci w[c][ci] * in[ci][j], accumulated into an int32
/// pixel tile whose inner j-loop is contiguous in both input and
/// accumulator (vectorizable, no reduction). Channel order ci ascending
/// matches the scalar im2col patch order for kernel == 1, so the sum is
/// the same sum. Tiles go outer, channels inner, so a tile's input rows
/// (cin * kDirectPixTile bytes) stay cache-hot across the channel
/// range. Runs off the canonical int8 weights — no packing needed.
constexpr int kDirectPixTile = 512;

/// Minimum output pixels for the direct 1x1 kernel to beat the im2col
/// GEMM (measured: direct wins at 64+ pixels, loses badly at 16).
constexpr int kDirectMinPix = 64;

MICRONAS_SIMD_CLONES
void direct_conv_rows(const QConv2dArgs& a, const Requant& rq, int npix, const std::int8_t* in,
                      std::int8_t* out, int c_begin, int c_end) {
  std::int32_t acc[kDirectPixTile];
  for (int j0 = 0; j0 < npix; j0 += kDirectPixTile) {
    const int jn = std::min(kDirectPixTile, npix - j0);
    for (int c = c_begin; c < c_end; ++c) {
      const std::int8_t* wrow = a.weight + static_cast<std::ptrdiff_t>(c) * a.cin;
      for (int j = 0; j < jn; ++j) acc[j] = 0;
      for (int ci = 0; ci < a.cin; ++ci) {
        const std::int32_t w = wrow[ci];
        const std::int8_t* row = in + static_cast<std::ptrdiff_t>(ci) * npix + j0;
        for (int j = 0; j < jn; ++j) acc[j] += w * static_cast<std::int32_t>(row[j]);
      }
      std::int8_t* orow = out + static_cast<std::ptrdiff_t>(c) * npix + j0;
      for (int j = 0; j < jn; ++j) orow[j] = rq.store(acc[j], c);
    }
  }
}

void qconv2d_direct(const QConv2dArgs& a, ThreadPool* pool) {
  const int npix = a.h * a.w;  // out_h == h, out_w == w by selection
  const Requant rq = conv_requant(a);
  for_sample_units(a.batch, a.cout, pool, [&](int n, int c_begin, int c_end) {
    const std::int8_t* in = a.input + static_cast<std::ptrdiff_t>(n) * a.cin * npix;
    std::int8_t* out = a.output + static_cast<std::ptrdiff_t>(n) * a.cout * npix;
    direct_conv_rows(a, rq, npix, in, out, c_begin, c_end);
  });
}

/// dot16 GEMM over the batch dimension: operand column j is input
/// sample j widened to int16 (K-padded with zeros), output row j is
/// sample j (jstride = out_features, cstride = 1). The widened operand
/// is a short-lived local — linear layers here are a few KB per batch,
/// orders of magnitude below one conv's im2col, so a dedicated
/// executor-owned scratch would be plumbing for nothing.
void qlinear_gemm(const QLinearArgs& a, const PackedWeights& pw, ThreadPool* pool) {
  const int patchp = pw.padded_patch();
  std::vector<std::int16_t> columns(static_cast<std::size_t>(a.batch) * patchp, 0);
  for (int n = 0; n < a.batch; ++n) {
    const std::int8_t* row = a.input + static_cast<std::ptrdiff_t>(n) * a.in_features;
    std::int16_t* dst = columns.data() + static_cast<std::ptrdiff_t>(n) * patchp;
    for (int k = 0; k < a.in_features; ++k) dst[k] = row[k];
  }
  const Requant rq{a.bias, a.weight_sum, a.mantissa, a.shift,
                   a.in_zp, a.out_zp,    kInt8Min};
  for_sample_units(a.batch, 1, pool, [&](int n, int, int) {
    qdot16_block(pw.data.data(), columns.data(), patchp, a.out_features, rq, a.output,
                 /*cstride=*/1, /*jstride=*/a.out_features, n, n + 1);
  });
}

bool packed_matches(const PackedWeights* packed, int cout, int patch) {
  return packed != nullptr && packed->layout == WeightLayout::kPackedDot16 &&
         packed->cout == cout && packed->patch == patch && !packed->empty();
}

}  // namespace

const char* weight_layout_name(WeightLayout layout) {
  switch (layout) {
    case WeightLayout::kRowMajor: return "row-major";
    case WeightLayout::kPackedDot16: return "packed-dot16";
  }
  return "unknown";
}

int PackedWeights::padded_patch() const {
  return (patch + kDotLanes - 1) / kDotLanes * kDotLanes;
}

PackedWeights pack_weights_dot16(const std::int8_t* weight, int cout, int patch) {
  PackedWeights pw;
  pw.layout = WeightLayout::kPackedDot16;
  pw.cout = cout;
  pw.patch = patch;
  const int patchp = pw.padded_patch();
  std::vector<std::int16_t> panels(static_cast<std::size_t>(cout) * patchp, 0);
  for (int c = 0; c < cout; ++c) {
    const std::int8_t* src = weight + static_cast<std::ptrdiff_t>(c) * patch;
    std::int16_t* dst = panels.data() + static_cast<std::ptrdiff_t>(c) * patchp;
    for (int k = 0; k < patch; ++k) dst[k] = src[k];
    // K tail stays zero: multiplied against zeroed operand padding.
  }
  pw.data = std::move(panels);
  return pw;
}

bool node_wants_packed_weights(const ir::Graph& graph, const ir::Node& node) {
  (void)graph;
  // Every GEMM-shaped op packs: spatial convs always run the im2col
  // GEMM, and even 1x1 convs fall back to it on late (small-plane)
  // stages where the direct kernel's per-channel loop overhead
  // dominates — see select_qconv_kernel.
  return node.op == ir::OpKind::kQLinear || node.op == ir::OpKind::kQConv2d;
}

const PackedWeights* PackedWeightSet::find(int node_id) const {
  if (node_id < 0 || static_cast<std::size_t>(node_id) >= by_node.size()) return nullptr;
  const PackedWeights& pw = by_node[static_cast<std::size_t>(node_id)];
  return pw.empty() ? nullptr : &pw;
}

bool PackedWeightSet::empty() const {
  for (const PackedWeights& pw : by_node) {
    if (!pw.empty()) return false;
  }
  return true;
}

PackedWeightSet pack_graph_weights(const ir::Graph& graph) {
  PackedWeightSet set;
  set.by_node.resize(static_cast<std::size_t>(graph.size()));
  for (const ir::Node& node : graph.nodes()) {
    if (!node_wants_packed_weights(graph, node)) continue;
    const ir::Node& weight = graph.node(node.inputs[1]);
    const int cout = weight.type.shape[0];
    const int patch = static_cast<int>(weight.type.shape.numel()) / cout;
    set.by_node[static_cast<std::size_t>(node.id)] =
        pack_weights_dot16(weight.i8_data.data(), cout, patch);
  }
  return set;
}

std::size_t qconv_gemm_scratch_bytes(int cin, int h, int w, int kernel, int pad, int out_h,
                                     int out_w) {
  const std::size_t hp = static_cast<std::size_t>(h) + 2 * static_cast<std::size_t>(pad);
  const std::size_t wp = static_cast<std::size_t>(w) + 2 * static_cast<std::size_t>(pad);
  const std::size_t patch = static_cast<std::size_t>(cin) * kernel * kernel;
  const std::size_t patchp = (patch + kDotLanes - 1) / kDotLanes * kDotLanes;
  const std::size_t npix = static_cast<std::size_t>(out_h) * out_w;
  return (static_cast<std::size_t>(cin) * hp * wp + npix * patchp) * sizeof(std::int16_t);
}

const char* qconv_kernel_name(QConvKernel k) {
  switch (k) {
    case QConvKernel::kScalar: return "scalar";
    case QConvKernel::kIm2colGemm: return "im2col-gemm";
    case QConvKernel::kDirectConv: return "direct-conv";
  }
  return "unknown";
}

const char* qlinear_kernel_name(QLinearKernel k) {
  switch (k) {
    case QLinearKernel::kScalar: return "scalar";
    case QLinearKernel::kGemm: return "gemm";
  }
  return "unknown";
}

bool fast_kernels_enabled() {
#ifdef MICRONAS_PORTABLE
  return false;
#else
  return true;
#endif
}

QConvKernel select_qconv_kernel(const QConv2dArgs& a, const PackedWeights* packed) {
  if (!fast_kernels_enabled()) return QConvKernel::kScalar;
  // 1x1/s1/p0 with enough pixels: the direct kernel's contiguous pixel
  // rows beat building an im2col transpose. Below kDirectMinPix the
  // per-channel loop overhead dominates its vectorized inner loop and
  // the GEMM wins (measured crossover between 16 and 64 pixels).
  const bool one_by_one = a.kernel == 1 && a.stride == 1 && a.pad == 0;
  if (one_by_one && a.out_h * a.out_w >= kDirectMinPix) return QConvKernel::kDirectConv;
  if (packed_matches(packed, a.cout, a.cin * a.kernel * a.kernel)) {
    return QConvKernel::kIm2colGemm;
  }
  // No packed weights (graph-only caller that skipped packing): the
  // direct kernel still beats scalar everywhere except tiny planes.
  if (one_by_one) return QConvKernel::kDirectConv;
  return QConvKernel::kScalar;
}

QLinearKernel select_qlinear_kernel(const QLinearArgs& a, const PackedWeights* packed) {
  if (!fast_kernels_enabled()) return QLinearKernel::kScalar;
  if (packed_matches(packed, a.out_features, a.in_features)) return QLinearKernel::kGemm;
  return QLinearKernel::kScalar;
}

void qconv2d_auto(const QConv2dArgs& a, const PackedWeights* packed, ThreadPool* pool) {
  switch (select_qconv_kernel(a, packed)) {
    case QConvKernel::kScalar: return qconv2d(a, pool);
    case QConvKernel::kDirectConv: return qconv2d_direct(a, pool);
    case QConvKernel::kIm2colGemm: return qconv2d_gemm(a, *packed, pool);
  }
}

void qlinear_auto(const QLinearArgs& a, const PackedWeights* packed, ThreadPool* pool) {
  switch (select_qlinear_kernel(a, packed)) {
    case QLinearKernel::kScalar: return qlinear(a, pool);
    case QLinearKernel::kGemm: return qlinear_gemm(a, *packed, pool);
  }
}

}  // namespace micronas::rt
