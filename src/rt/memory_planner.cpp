#include "src/rt/memory_planner.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace micronas::rt {

namespace {

long long align_up(long long v, int alignment) {
  const long long a = alignment;
  return (v + a - 1) / a * a;
}

bool lifetimes_overlap(const BufferPlacement& a, const BufferPlacement& b) {
  return a.def_step <= b.last_use_step && b.def_step <= a.last_use_step;
}

/// Schedule + value lifetimes, a pure function of the graph: shared by
/// plan_memory (which then assigns offsets) and check_plan (which
/// verifies a deserialized plan against a re-derivation).
struct Liveness {
  std::vector<int> schedule;               // executed node ids, in order
  std::vector<BufferPlacement> buffers;    // offsets left at 0
};

Liveness compute_liveness(const ir::Graph& graph) {
  Liveness live;

  // Schedule steps: the input is step 0, executed nodes follow in
  // graph order. Constants take no step and no buffer.
  std::vector<int> step_of(static_cast<std::size_t>(graph.size()), -1);
  step_of[static_cast<std::size_t>(graph.input())] = 0;
  int step = 0;
  for (const auto& node : graph.nodes()) {
    if (node.is_const() || node.op == ir::OpKind::kInput) continue;
    step_of[static_cast<std::size_t>(node.id)] = ++step;
    live.schedule.push_back(node.id);
  }
  const int last_step = step;

  // Liveness: def at own step, last use at the latest consuming step.
  std::vector<BufferPlacement>& buffers = live.buffers;
  for (const auto& node : graph.nodes()) {
    if (node.is_const()) continue;
    BufferPlacement b;
    b.node_id = node.id;
    b.size = node.type.bytes();
    b.def_step = step_of[static_cast<std::size_t>(node.id)];
    b.last_use_step = b.def_step;
    buffers.push_back(b);
  }
  auto placement_of = [&buffers](int id) -> BufferPlacement& {
    auto it = std::lower_bound(buffers.begin(), buffers.end(), id,
                               [](const BufferPlacement& p, int i) { return p.node_id < i; });
    return *it;  // buffers is sorted by construction (graph order)
  };
  for (const auto& node : graph.nodes()) {
    if (node.is_const() || node.op == ir::OpKind::kInput) continue;
    for (int in : node.inputs) {
      if (graph.node(in).is_const()) continue;
      auto& producer = placement_of(in);
      producer.last_use_step =
          std::max(producer.last_use_step, step_of[static_cast<std::size_t>(node.id)]);
    }
  }
  // A fully folded graph can end in a constant (e.g. an all-`none`
  // genotype under constant folding): constants have no placement.
  if (!graph.node(graph.output()).is_const()) {
    placement_of(graph.output()).last_use_step = last_step;
  }
  return live;
}

/// Index into a node-id-sorted placement vector; -1 if absent.
int index_of(const std::vector<BufferPlacement>& buffers, int node_id) {
  auto it = std::lower_bound(buffers.begin(), buffers.end(), node_id,
                             [](const BufferPlacement& p, int id) { return p.node_id < id; });
  if (it == buffers.end() || it->node_id != node_id) return -1;
  return static_cast<int>(it - buffers.begin());
}

/// Union-find over buffer indices: one set per storage group (values
/// that share arena bytes through alias_of chains or strip streams).
struct StorageGroups {
  std::vector<int> parent;

  explicit StorageGroups(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int i) {
    while (parent[static_cast<std::size_t>(i)] != i) {
      parent[static_cast<std::size_t>(i)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(i)])];
      i = parent[static_cast<std::size_t>(i)];
    }
    return i;
  }
  void unite(int a, int b) { parent[static_cast<std::size_t>(find(a))] = find(b); }
};

/// Groups from a placement vector's alias_of fields plus strip entries.
StorageGroups build_groups(const std::vector<BufferPlacement>& buffers,
                           const std::vector<StripStream>& strips, const ir::Graph& graph) {
  StorageGroups groups(buffers.size());
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    if (buffers[i].alias_of < 0) continue;
    const int t = index_of(buffers, buffers[i].alias_of);
    if (t >= 0) groups.unite(static_cast<int>(i), t);
  }
  for (const StripStream& s : strips) {
    const int y = index_of(buffers, s.node_id);
    if (y < 0) continue;
    const int x = index_of(buffers, graph.node(s.node_id).inputs[0]);
    if (x >= 0) groups.unite(y, x);
  }
  return groups;
}

/// Greedy placement over storage groups: each group's members share one
/// offset, the group occupies the extent of its largest member, and
/// groups are placed largest first at the lowest aligned offset free
/// across every already-placed conflicting group.
///
/// Conflict granularity:
///  - hull (default): two groups conflict over their full sizes when
///    their lifetime hulls overlap. Stable and anomaly-free — a buffer
///    never snuggles into a gap that a later, larger buffer needed.
///  - member: conflicts are detected member-pair by member-pair, and
///    each side only reserves the largest member that is genuinely
///    co-live with the other group. Tighter: the classifier tail (a
///    few dozen bytes) can nest inside a streaming group's extent while
///    only its pooled vector is still live. Used by the arena_budget
///    search when hull placement cannot meet the budget.
void place_groups(std::vector<BufferPlacement>& buffers, StorageGroups& groups, int alignment,
                  bool member_granular, long long* arena_bytes) {
  struct Group {
    int root;
    int min_node_id;
    long long size = 0;
    long long offset = 0;
    int def_step;
    int last_use_step;
    std::vector<int> members;  // buffer indices
  };
  std::vector<int> group_index(buffers.size(), -1);
  std::vector<Group> group_list;
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const int root = groups.find(static_cast<int>(i));
    if (group_index[static_cast<std::size_t>(root)] < 0) {
      group_index[static_cast<std::size_t>(root)] = static_cast<int>(group_list.size());
      Group g;
      g.root = root;
      g.min_node_id = buffers[i].node_id;
      g.def_step = buffers[i].def_step;
      g.last_use_step = buffers[i].last_use_step;
      group_list.push_back(g);
    }
    Group& g = group_list[static_cast<std::size_t>(group_index[static_cast<std::size_t>(root)])];
    g.min_node_id = std::min(g.min_node_id, buffers[i].node_id);
    g.size = std::max(g.size, buffers[i].size);
    g.def_step = std::min(g.def_step, buffers[i].def_step);
    g.last_use_step = std::max(g.last_use_step, buffers[i].last_use_step);
    g.members.push_back(static_cast<int>(i));
  }

  std::vector<std::size_t> order(group_list.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (group_list[a].size != group_list[b].size) return group_list[a].size > group_list[b].size;
    if (group_list[a].def_step != group_list[b].def_step)
      return group_list[a].def_step < group_list[b].def_step;
    return group_list[a].min_node_id < group_list[b].min_node_id;
  });

  std::vector<std::size_t> placed;
  *arena_bytes = 0;
  for (std::size_t idx : order) {
    Group& g = group_list[idx];
    // Per conflict: where the other group sits, how many bytes of it
    // are actually in the way (`theirs`), and how many of ours can
    // collide with it (`ours`). At hull granularity both are the full
    // group sizes.
    struct Conflict {
      long long offset;
      long long theirs;
      long long ours;
    };
    std::vector<Conflict> conflicts;
    for (std::size_t p : placed) {
      const Group& o = group_list[p];
      long long theirs = 0;
      long long ours = 0;
      if (member_granular) {
        for (const int mg : g.members) {
          for (const int mo : o.members) {
            if (!lifetimes_overlap(buffers[static_cast<std::size_t>(mg)],
                                   buffers[static_cast<std::size_t>(mo)]))
              continue;
            ours = std::max(ours, buffers[static_cast<std::size_t>(mg)].size);
            theirs = std::max(theirs, buffers[static_cast<std::size_t>(mo)].size);
          }
        }
      } else if (g.def_step <= o.last_use_step && o.def_step <= g.last_use_step) {
        theirs = o.size;
        ours = g.size;
      }
      if (theirs > 0) conflicts.push_back({o.offset, theirs, ours});
    }
    std::sort(conflicts.begin(), conflicts.end(),
              [](const Conflict& a, const Conflict& b) { return a.offset < b.offset; });
    // Scan to a fixpoint: with per-conflict extents a bump past one
    // conflict can land inside another that an earlier check cleared
    // on the "fits before it" side, so one pass is not enough. Each
    // bump strictly raises `offset`, so this terminates in at most
    // |conflicts| rounds.
    long long offset = 0;
    for (bool bumped = true; bumped;) {
      bumped = false;
      for (const Conflict& c : conflicts) {
        const bool disjoint = offset + c.ours <= c.offset || c.offset + c.theirs <= offset;
        if (!disjoint) {
          offset = std::max(offset, align_up(c.offset + c.theirs, alignment));
          bumped = true;
        }
      }
    }
    g.offset = offset;
    placed.push_back(idx);
    *arena_bytes = std::max(*arena_bytes, offset + g.size);
  }

  for (std::size_t i = 0; i < buffers.size(); ++i) {
    const int root = groups.find(static_cast<int>(i));
    buffers[i].offset =
        group_list[static_cast<std::size_t>(group_index[static_cast<std::size_t>(root)])].offset;
  }
}

void verify_no_live_overlap(const std::vector<BufferPlacement>& buffers, StorageGroups& groups,
                            const char* who) {
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    for (std::size_t j = i + 1; j < buffers.size(); ++j) {
      const auto& a = buffers[i];
      const auto& b = buffers[j];
      if (!lifetimes_overlap(a, b)) continue;
      if (groups.find(static_cast<int>(i)) == groups.find(static_cast<int>(j))) continue;
      const bool disjoint = a.offset + a.size <= b.offset || b.offset + b.size <= a.offset;
      if (!disjoint) {
        throw std::logic_error(std::string(who) + ": overlapping live buffers %" +
                               std::to_string(a.node_id) + " and %" + std::to_string(b.node_id));
      }
    }
  }
}

}  // namespace

const BufferPlacement* MemoryPlan::find(int node_id) const {
  auto it = std::lower_bound(buffers.begin(), buffers.end(), node_id,
                             [](const BufferPlacement& p, int id) { return p.node_id < id; });
  if (it == buffers.end() || it->node_id != node_id) return nullptr;
  return &*it;
}

const StripStream* MemoryPlan::find_strip(int node_id) const {
  auto it = std::lower_bound(strips.begin(), strips.end(), node_id,
                             [](const StripStream& s, int id) { return s.node_id < id; });
  if (it == strips.end() || it->node_id != node_id) return nullptr;
  return &*it;
}

bool inplace_alias_op(ir::OpKind op) {
  switch (op) {
    case ir::OpKind::kRelu:
    case ir::OpKind::kAdd:
    case ir::OpKind::kQRelu:
    case ir::OpKind::kQAdd:
    case ir::OpKind::kQGlobalAvgPool:
    case ir::OpKind::kGlobalAvgPool:
    // Quantize shrinks f32 -> i8 with a forward loop: the byte written
    // for element i precedes every byte later elements still read, so
    // the output may overlay the input's storage. (Dequantize is the
    // widening direction and is NOT safe: out[0] spans in[1..3].)
    case ir::OpKind::kQuantize:
      return true;
    default:
      return false;
  }
}

bool strip_streamable(const ir::Graph& graph, const ir::Node& node) {
  if (node.op != ir::OpKind::kQConv2d && node.op != ir::OpKind::kQAvgPool) return false;
  if (node.conv.stride != 1) return false;
  const ir::Node& x = graph.node(node.inputs[0]);
  if (x.is_const()) return false;
  const Shape& ys = node.type.shape;
  const Shape& xs = x.type.shape;
  if (ys.rank() != 4 || xs.rank() != 4) return false;
  if (ys[0] != xs[0]) return false;
  // Same spatial dims (with stride 1 this forces kernel == 2*pad + 1,
  // so the halo is exactly `pad` rows on each side).
  if (ys[2] != xs[2] || ys[3] != xs[3]) return false;
  if (ys[2] < 2) return false;  // nothing to strip
  // The output overlays the input byte-for-byte per plane. With a graph
  // batch dim > 1 the per-sample bases only coincide when the channel
  // counts match.
  if (xs[0] > 1 && ys[1] != xs[1]) return false;
  return node.conv.kernel == 2 * node.conv.pad + 1;
}

long long strip_scratch_bytes(const ir::Graph& graph, int node_id, int strip_h) {
  const ir::Node& node = graph.node(node_id);
  const ir::Node& x = graph.node(node.inputs[0]);
  const long long cin = x.type.shape[1];
  const long long w = x.type.shape[3];
  const long long cout = node.type.shape[1];
  const long long wo = node.type.shape[3];
  const long long k = node.conv.kernel;
  const long long p = node.conv.pad;
  const long long in_rows = strip_h - 1 + k;
  const long long gather = cin * in_rows * (w + 2 * p);          // zp-padded input rows
  const long long stage = cout * strip_h * wo;                   // staged output rows
  return align_up(gather, kMaxPlanAlignment) + stage;
}

MemoryPlan plan_memory(const ir::Graph& graph, const MemoryPlanOptions& options) {
  graph.validate();
  if (options.alignment < 1 || options.alignment > kMaxPlanAlignment) {
    throw std::invalid_argument("plan_memory: alignment must be in [1, " +
                                std::to_string(kMaxPlanAlignment) + "]");
  }
  if (options.batch < 1) {
    throw std::invalid_argument("plan_memory: batch must be >= 1");
  }
  if (options.arena_budget < 0) {
    throw std::invalid_argument("plan_memory: arena_budget must be >= 0");
  }

  Liveness live = compute_liveness(graph);

  // Rung 2: in-place aliasing. An op whose kernel is in-place safe may
  // overwrite an input that dies at the op, as long as the output fits
  // inside the input's storage (and, at batch capacity > 1, the sizes
  // match exactly so the per-sample slot layouts coincide).
  std::vector<BufferPlacement> proto = std::move(live.buffers);
  if (options.alias_inplace) {
    for (const int id : live.schedule) {
      const ir::Node& node = graph.node(id);
      if (!inplace_alias_op(node.op)) continue;
      const int self = index_of(proto, id);
      for (const int in : node.inputs) {
        if (graph.node(in).is_const()) continue;
        const int src = index_of(proto, in);
        if (src < 0) continue;
        if (proto[static_cast<std::size_t>(src)].last_use_step !=
            proto[static_cast<std::size_t>(self)].def_step)
          continue;  // input must die at this op
        if (proto[static_cast<std::size_t>(self)].size >
            proto[static_cast<std::size_t>(src)].size)
          continue;  // output must fit over the input
        if (options.batch > 1 && proto[static_cast<std::size_t>(self)].size !=
                                     proto[static_cast<std::size_t>(src)].size)
          continue;  // batched sample slots must line up
        proto[static_cast<std::size_t>(self)].alias_of = in;
        break;
      }
    }
  }

  // Assemble a full plan for a given strip set (used once without
  // strips, then iteratively while searching for a budget-fitting set).
  const auto build = [&](const std::vector<StripStream>& strips, bool member_granular) {
    MemoryPlan plan;
    plan.schedule = live.schedule;
    plan.strips = strips;
    std::sort(plan.strips.begin(), plan.strips.end(),
              [](const StripStream& a, const StripStream& b) { return a.node_id < b.node_id; });
    plan.buffers = proto;
    if (options.batch > 1) {
      for (BufferPlacement& b : plan.buffers) b.size *= options.batch;
    }
    StorageGroups groups = build_groups(plan.buffers, plan.strips, graph);
    place_groups(plan.buffers, groups, options.alignment, member_granular, &plan.arena_bytes);
    for (const auto& b : plan.buffers) plan.naive_bytes += align_up(b.size, options.alignment);
    for (const StripStream& s : plan.strips) {
      plan.stream_scratch_bytes =
          std::max(plan.stream_scratch_bytes, strip_scratch_bytes(graph, s.node_id, s.strip_h));
    }
    verify_no_live_overlap(plan.buffers, groups, "plan_memory");
    return plan;
  };

  MemoryPlan plan = build({}, false);

  // Rung 3: row-strip streaming under an arena budget. Greedily stream
  // the eligible node with the largest mergeable pair until the plan
  // fits. A strip is kept when it does not WORSEN the arena: on a conv
  // chain each single strip is arena-neutral (the merged pair still
  // coexists with the neighbouring conv) and the saving only appears
  // once the whole chain shares one storage group, so strictly-
  // improving acceptance would reject every link and never converge.
  // Strips that turn out not to be needed are pruned afterwards, and
  // an accepted plan never exceeds the unstreamed one. Each strip set
  // is placed at hull granularity first, then at member granularity
  // (see place_groups) before the budget is declared unreachable.
  if (options.arena_budget > 0 && plan.arena_bytes > options.arena_budget) {
    std::vector<StripStream> strips;
    bool member = false;
    for (const bool granularity : {false, true}) {
      member = granularity;
      MemoryPlan cur = build(strips, member);
      std::vector<char> tried(static_cast<std::size_t>(graph.size()), 0);
      for (const StripStream& s : strips) tried[static_cast<std::size_t>(s.node_id)] = 1;
      while (cur.arena_bytes > options.arena_budget) {
        int best = -1;
        long long best_saving = -1;
        for (const int id : live.schedule) {
          if (tried[static_cast<std::size_t>(id)]) continue;
          const ir::Node& node = graph.node(id);
          if (!strip_streamable(graph, node)) continue;
          const int self = index_of(proto, id);
          const int src = index_of(proto, node.inputs[0]);
          if (self < 0 || src < 0) continue;
          const BufferPlacement& y = proto[static_cast<std::size_t>(self)];
          const BufferPlacement& x = proto[static_cast<std::size_t>(src)];
          if (x.last_use_step != y.def_step) continue;  // input must die at the op
          if (y.alias_of >= 0) continue;                // one mechanism per node
          if (options.batch > 1 && x.size != y.size) continue;
          const long long saving = std::min(x.size, y.size);
          if (saving > best_saving || (saving == best_saving && id < best)) {
            best = id;
            best_saving = saving;
          }
        }
        if (best < 0) break;  // candidates exhausted at this granularity
        tried[static_cast<std::size_t>(best)] = 1;
        const int out_h = graph.node(best).type.shape[2];
        StripStream s;
        s.node_id = best;
        // ~8 strips amortize the gather/scatter copies; the halo makes a
        // strip of fewer than `pad` + 1 rows mostly overlap.
        s.strip_h = std::min(out_h, std::max(graph.node(best).conv.pad + 1, (out_h + 7) / 8));
        strips.push_back(s);
        MemoryPlan next = build(strips, member);
        if (next.arena_bytes <= cur.arena_bytes) {
          cur = std::move(next);
        } else {
          strips.pop_back();
        }
      }
      if (cur.arena_bytes < plan.arena_bytes) plan = std::move(cur);
      if (plan.arena_bytes <= options.arena_budget) break;
    }
    if (plan.arena_bytes > options.arena_budget) {
      throw std::runtime_error("plan_memory: arena_budget " +
                               std::to_string(options.arena_budget) +
                               " B unreachable (best achievable " +
                               std::to_string(plan.arena_bytes) + " B)");
    }
    // Drop strips the final placement does not need: neutral links
    // accepted on the way to a chain merge, then obsoleted by later
    // strips, cost gather/scatter copies at run time for nothing.
    for (std::size_t i = plan.strips.size(); i-- > 0;) {
      std::vector<StripStream> trimmed = plan.strips;
      trimmed.erase(trimmed.begin() + static_cast<std::ptrdiff_t>(i));
      MemoryPlan t = build(trimmed, member);
      if (t.arena_bytes <= options.arena_budget) plan = std::move(t);
    }
  }
  return plan;
}

void check_plan(const ir::Graph& graph, const MemoryPlan& plan) {
  graph.validate();
  const auto fail = [](const std::string& what) { throw std::logic_error("check_plan: " + what); };

  const Liveness live = compute_liveness(graph);
  if (plan.schedule != live.schedule) fail("schedule does not match the graph's executed nodes");
  if (plan.buffers.size() != live.buffers.size()) {
    fail("placement count " + std::to_string(plan.buffers.size()) + " != live value count " +
         std::to_string(live.buffers.size()));
  }
  if (plan.arena_bytes < 0 || plan.arena_bytes > plan.naive_bytes) {
    fail("arena_bytes outside [0, naive_bytes]");
  }
  long long min_naive = 0;
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    const BufferPlacement& got = plan.buffers[i];
    const BufferPlacement& want = live.buffers[i];  // both sorted by node id
    if (got.node_id != want.node_id) fail("placement for unexpected node id");
    if (got.size != want.size) {
      fail("size mismatch on %" + std::to_string(got.node_id) + " (" + std::to_string(got.size) +
           " vs value bytes " + std::to_string(want.size) + ")");
    }
    if (got.def_step != want.def_step || got.last_use_step != want.last_use_step) {
      fail("lifetime mismatch on %" + std::to_string(got.node_id));
    }
    // Overflow-safe form of offset + size > arena_bytes: the fields
    // may come from a hostile file, so the sum must never be formed
    // before the range is established.
    if (got.offset < 0 || got.size > plan.arena_bytes ||
        got.offset > plan.arena_bytes - got.size) {
      fail("placement for %" + std::to_string(got.node_id) + " escapes the arena");
    }
    min_naive += want.size;
  }
  if (plan.naive_bytes < min_naive) fail("naive_bytes below the sum of value sizes");
  // ...and from above: plan_memory aligns each buffer to at most
  // kMaxPlanAlignment, so a plan whose naive_bytes exceeds the sizes
  // plus that per-buffer slack is hostile. Together with the
  // arena_bytes <= naive_bytes check above, this stops a checksum-valid
  // package from demanding an arbitrarily large Executor arena.
  const long long max_naive =
      min_naive + static_cast<long long>(plan.buffers.size()) * (kMaxPlanAlignment - 1);
  if (plan.naive_bytes > max_naive) {
    fail("naive_bytes " + std::to_string(plan.naive_bytes) +
         " exceeds the aligned sum of value sizes (max " + std::to_string(max_naive) + ")");
  }

  // Alias entries: in-place-safe op, the target is a non-const input
  // that dies at the op, the output fits inside it, and both share an
  // offset. Anything else in a deserialized plan is hostile.
  for (const BufferPlacement& got : plan.buffers) {
    if (got.alias_of < 0) continue;
    if (got.alias_of >= graph.size()) fail("alias target id out of range");
    const ir::Node& node = graph.node(got.node_id);
    if (!inplace_alias_op(node.op)) {
      fail("alias on %" + std::to_string(got.node_id) + ": op is not in-place safe");
    }
    if (std::find(node.inputs.begin(), node.inputs.end(), got.alias_of) == node.inputs.end()) {
      fail("alias on %" + std::to_string(got.node_id) + ": target is not an input");
    }
    const BufferPlacement* target = plan.find(got.alias_of);
    if (target == nullptr) {
      fail("alias on %" + std::to_string(got.node_id) + ": target has no placement");
    }
    if (target->last_use_step != got.def_step) {
      fail("alias on %" + std::to_string(got.node_id) + ": target does not die at the op");
    }
    if (got.size > target->size) {
      fail("alias on %" + std::to_string(got.node_id) + ": output larger than the target");
    }
    if (got.offset != target->offset) {
      fail("alias on %" + std::to_string(got.node_id) + ": offsets differ from the target");
    }
  }

  // Strip entries: streamable geometry, a dying input, a shared offset,
  // strip_h in range and scratch accounting that matches a re-derivation.
  long long want_scratch = 0;
  for (std::size_t i = 0; i < plan.strips.size(); ++i) {
    const StripStream& s = plan.strips[i];
    if (i > 0 && plan.strips[i - 1].node_id >= s.node_id) {
      fail("strip entries not strictly sorted by node id");
    }
    if (s.node_id < 0 || s.node_id >= graph.size()) fail("strip entry id out of range");
    const ir::Node& node = graph.node(s.node_id);
    if (!strip_streamable(graph, node)) {
      fail("strip on %" + std::to_string(s.node_id) + ": node is not streamable");
    }
    const BufferPlacement* y = plan.find(s.node_id);
    const BufferPlacement* x = plan.find(node.inputs[0]);
    if (y == nullptr || x == nullptr) {
      fail("strip on %" + std::to_string(s.node_id) + ": missing placement");
    }
    if (x->last_use_step != y->def_step) {
      fail("strip on %" + std::to_string(s.node_id) + ": input does not die at the op");
    }
    if (y->alias_of >= 0) {
      fail("strip on %" + std::to_string(s.node_id) + ": node is also aliased");
    }
    if (y->offset != x->offset) {
      fail("strip on %" + std::to_string(s.node_id) + ": output does not overlay the input");
    }
    // The bottom-up strip driver scatters strip i+1 after gathering
    // strip i; that ordering is only halo-safe when every full strip
    // covers at least `pad` rows.
    if (s.strip_h < std::max(1, node.conv.pad) || s.strip_h > node.type.shape[2]) {
      fail("strip on %" + std::to_string(s.node_id) + ": strip_h outside [max(1, pad), out_h]");
    }
    want_scratch = std::max(want_scratch, strip_scratch_bytes(graph, s.node_id, s.strip_h));
  }
  if (plan.stream_scratch_bytes != want_scratch) {
    fail("stream_scratch_bytes " + std::to_string(plan.stream_scratch_bytes) +
         " does not match the strips (want " + std::to_string(want_scratch) + ")");
  }

  // No-overlap-while-live, with members of one storage group (alias
  // chains, strip pairs) exempt — their byte sharing is the point, and
  // its safety was established entry-by-entry above.
  StorageGroups groups = build_groups(plan.buffers, plan.strips, graph);
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.buffers.size(); ++j) {
      const auto& a = plan.buffers[i];
      const auto& b = plan.buffers[j];
      if (!lifetimes_overlap(a, b)) continue;
      if (groups.find(static_cast<int>(i)) == groups.find(static_cast<int>(j))) continue;
      const bool disjoint = a.offset + a.size <= b.offset || b.offset + b.size <= a.offset;
      if (!disjoint) {
        fail("overlapping live buffers %" + std::to_string(a.node_id) + " and %" +
             std::to_string(b.node_id));
      }
    }
  }
}

std::string MemoryPlan::to_string(const ir::Graph& graph) const {
  std::ostringstream ss;
  ss << "arena " << arena_bytes << " B (naive " << naive_bytes << " B, reuse x";
  char reuse[32];
  std::snprintf(reuse, sizeof(reuse), "%.2f", reuse_factor());
  ss << reuse << ")";
  if (!strips.empty()) {
    ss << ", stream scratch " << stream_scratch_bytes << " B";
  }
  ss << "\n";
  ss << "step  node  op              bytes     offset  live\n";
  for (int id : schedule) {
    const BufferPlacement* b = find(id);
    const ir::Node& node = graph.node(id);
    char line[160];
    std::snprintf(line, sizeof(line), "%4d  %%%-4d %-15s %7lld  %9lld  [%d, %d]", b->def_step,
                  id, op_kind_name(node.op).c_str(), b->size, b->offset, b->def_step,
                  b->last_use_step);
    ss << line;
    if (b->alias_of >= 0) ss << "  inplace %" << b->alias_of;
    if (const StripStream* s = find_strip(id)) ss << "  stream h=" << s->strip_h;
    ss << "\n";
  }
  return ss.str();
}

}  // namespace micronas::rt
