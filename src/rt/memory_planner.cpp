#include "src/rt/memory_planner.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace micronas::rt {

namespace {

long long align_up(long long v, int alignment) {
  const long long a = alignment;
  return (v + a - 1) / a * a;
}

bool lifetimes_overlap(const BufferPlacement& a, const BufferPlacement& b) {
  return a.def_step <= b.last_use_step && b.def_step <= a.last_use_step;
}

/// Schedule + value lifetimes, a pure function of the graph: shared by
/// plan_memory (which then assigns offsets) and check_plan (which
/// verifies a deserialized plan against a re-derivation).
struct Liveness {
  std::vector<int> schedule;               // executed node ids, in order
  std::vector<BufferPlacement> buffers;    // offsets left at 0
};

Liveness compute_liveness(const ir::Graph& graph) {
  Liveness live;

  // Schedule steps: the input is step 0, executed nodes follow in
  // graph order. Constants take no step and no buffer.
  std::vector<int> step_of(static_cast<std::size_t>(graph.size()), -1);
  step_of[static_cast<std::size_t>(graph.input())] = 0;
  int step = 0;
  for (const auto& node : graph.nodes()) {
    if (node.is_const() || node.op == ir::OpKind::kInput) continue;
    step_of[static_cast<std::size_t>(node.id)] = ++step;
    live.schedule.push_back(node.id);
  }
  const int last_step = step;

  // Liveness: def at own step, last use at the latest consuming step.
  std::vector<BufferPlacement>& buffers = live.buffers;
  for (const auto& node : graph.nodes()) {
    if (node.is_const()) continue;
    BufferPlacement b;
    b.node_id = node.id;
    b.size = node.type.bytes();
    b.def_step = step_of[static_cast<std::size_t>(node.id)];
    b.last_use_step = b.def_step;
    buffers.push_back(b);
  }
  auto placement_of = [&buffers](int id) -> BufferPlacement& {
    auto it = std::lower_bound(buffers.begin(), buffers.end(), id,
                               [](const BufferPlacement& p, int i) { return p.node_id < i; });
    return *it;  // buffers is sorted by construction (graph order)
  };
  for (const auto& node : graph.nodes()) {
    if (node.is_const() || node.op == ir::OpKind::kInput) continue;
    for (int in : node.inputs) {
      if (graph.node(in).is_const()) continue;
      auto& producer = placement_of(in);
      producer.last_use_step =
          std::max(producer.last_use_step, step_of[static_cast<std::size_t>(node.id)]);
    }
  }
  // A fully folded graph can end in a constant (e.g. an all-`none`
  // genotype under constant folding): constants have no placement.
  if (!graph.node(graph.output()).is_const()) {
    placement_of(graph.output()).last_use_step = last_step;
  }
  return live;
}

}  // namespace

const BufferPlacement* MemoryPlan::find(int node_id) const {
  auto it = std::lower_bound(buffers.begin(), buffers.end(), node_id,
                             [](const BufferPlacement& p, int id) { return p.node_id < id; });
  if (it == buffers.end() || it->node_id != node_id) return nullptr;
  return &*it;
}

MemoryPlan plan_memory(const ir::Graph& graph, const MemoryPlanOptions& options) {
  graph.validate();
  if (options.alignment < 1 || options.alignment > kMaxPlanAlignment) {
    throw std::invalid_argument("plan_memory: alignment must be in [1, " +
                                std::to_string(kMaxPlanAlignment) + "]");
  }

  if (options.batch < 1) {
    throw std::invalid_argument("plan_memory: batch must be >= 1");
  }

  MemoryPlan plan;
  Liveness live = compute_liveness(graph);
  plan.schedule = std::move(live.schedule);
  std::vector<BufferPlacement> buffers = std::move(live.buffers);
  // Batch capacity scales every value, not the schedule: lifetimes are
  // the batch-1 lifetimes, sizes are batch * the per-sample bytes.
  if (options.batch > 1) {
    for (BufferPlacement& b : buffers) b.size *= options.batch;
  }

  // Greedy by size, largest first (ties broken by def step then id so
  // the plan is deterministic): lowest aligned offset whose span is
  // free across every already-placed, lifetime-overlapping buffer.
  std::vector<std::size_t> order(buffers.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (buffers[a].size != buffers[b].size) return buffers[a].size > buffers[b].size;
    if (buffers[a].def_step != buffers[b].def_step)
      return buffers[a].def_step < buffers[b].def_step;
    return buffers[a].node_id < buffers[b].node_id;
  });

  std::vector<std::size_t> placed;
  for (std::size_t idx : order) {
    BufferPlacement& buf = buffers[idx];
    std::vector<const BufferPlacement*> conflicts;
    for (std::size_t p : placed) {
      if (lifetimes_overlap(buffers[p], buf)) conflicts.push_back(&buffers[p]);
    }
    std::sort(conflicts.begin(), conflicts.end(),
              [](const BufferPlacement* a, const BufferPlacement* b) {
                return a->offset < b->offset;
              });
    long long offset = 0;
    for (const BufferPlacement* c : conflicts) {
      if (offset + buf.size <= c->offset) break;  // fits in the gap before c
      offset = std::max(offset, align_up(c->offset + c->size, options.alignment));
    }
    buf.offset = offset;
    placed.push_back(idx);
    plan.arena_bytes = std::max(plan.arena_bytes, offset + buf.size);
  }

  for (const auto& b : buffers) plan.naive_bytes += align_up(b.size, options.alignment);
  plan.buffers = std::move(buffers);

  // Invariant: no two simultaneously live buffers may overlap.
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.buffers.size(); ++j) {
      const auto& a = plan.buffers[i];
      const auto& b = plan.buffers[j];
      if (!lifetimes_overlap(a, b)) continue;
      const bool disjoint = a.offset + a.size <= b.offset || b.offset + b.size <= a.offset;
      if (!disjoint) {
        throw std::logic_error("plan_memory: overlapping live buffers %" +
                               std::to_string(a.node_id) + " and %" + std::to_string(b.node_id));
      }
    }
  }
  return plan;
}

void check_plan(const ir::Graph& graph, const MemoryPlan& plan) {
  graph.validate();
  const auto fail = [](const std::string& what) { throw std::logic_error("check_plan: " + what); };

  const Liveness live = compute_liveness(graph);
  if (plan.schedule != live.schedule) fail("schedule does not match the graph's executed nodes");
  if (plan.buffers.size() != live.buffers.size()) {
    fail("placement count " + std::to_string(plan.buffers.size()) + " != live value count " +
         std::to_string(live.buffers.size()));
  }
  if (plan.arena_bytes < 0 || plan.arena_bytes > plan.naive_bytes) {
    fail("arena_bytes outside [0, naive_bytes]");
  }
  long long min_naive = 0;
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    const BufferPlacement& got = plan.buffers[i];
    const BufferPlacement& want = live.buffers[i];  // both sorted by node id
    if (got.node_id != want.node_id) fail("placement for unexpected node id");
    if (got.size != want.size) {
      fail("size mismatch on %" + std::to_string(got.node_id) + " (" + std::to_string(got.size) +
           " vs value bytes " + std::to_string(want.size) + ")");
    }
    if (got.def_step != want.def_step || got.last_use_step != want.last_use_step) {
      fail("lifetime mismatch on %" + std::to_string(got.node_id));
    }
    // Overflow-safe form of offset + size > arena_bytes: the fields
    // may come from a hostile file, so the sum must never be formed
    // before the range is established.
    if (got.offset < 0 || got.size > plan.arena_bytes ||
        got.offset > plan.arena_bytes - got.size) {
      fail("placement for %" + std::to_string(got.node_id) + " escapes the arena");
    }
    min_naive += want.size;
  }
  if (plan.naive_bytes < min_naive) fail("naive_bytes below the sum of value sizes");
  // ...and from above: plan_memory aligns each buffer to at most
  // kMaxPlanAlignment, so a plan whose naive_bytes exceeds the sizes
  // plus that per-buffer slack is hostile. Together with the
  // arena_bytes <= naive_bytes check above, this stops a checksum-valid
  // package from demanding an arbitrarily large Executor arena.
  const long long max_naive =
      min_naive + static_cast<long long>(plan.buffers.size()) * (kMaxPlanAlignment - 1);
  if (plan.naive_bytes > max_naive) {
    fail("naive_bytes " + std::to_string(plan.naive_bytes) +
         " exceeds the aligned sum of value sizes (max " + std::to_string(max_naive) + ")");
  }

  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.buffers.size(); ++j) {
      const auto& a = plan.buffers[i];
      const auto& b = plan.buffers[j];
      if (!lifetimes_overlap(a, b)) continue;
      const bool disjoint = a.offset + a.size <= b.offset || b.offset + b.size <= a.offset;
      if (!disjoint) {
        fail("overlapping live buffers %" + std::to_string(a.node_id) + " and %" +
             std::to_string(b.node_id));
      }
    }
  }
}

std::string MemoryPlan::to_string(const ir::Graph& graph) const {
  std::ostringstream ss;
  ss << "arena " << arena_bytes << " B (naive " << naive_bytes << " B, reuse x";
  char reuse[32];
  std::snprintf(reuse, sizeof(reuse), "%.2f", reuse_factor());
  ss << reuse << ")\n";
  ss << "step  node  op              bytes     offset  live\n";
  for (int id : schedule) {
    const BufferPlacement* b = find(id);
    const ir::Node& node = graph.node(id);
    char line[160];
    std::snprintf(line, sizeof(line), "%4d  %%%-4d %-15s %7lld  %9lld  [%d, %d]", b->def_step,
                  id, op_kind_name(node.op).c_str(), b->size, b->offset, b->def_step,
                  b->last_use_step);
    ss << line << "\n";
  }
  return ss.str();
}

}  // namespace micronas::rt
