// Static arena memory planner: liveness analysis + greedy-by-size
// offset assignment (the TFLite-Micro planning strategy).
//
// The node list of an ir::Graph is its execution schedule, so value
// lifetimes are intervals over schedule steps: a value is live from the
// step that defines it to the last step that consumes it (the graph
// output stays live to the end). Buffers whose lifetimes do not
// intersect may share arena bytes; the planner places buffers largest
// first, each at the lowest aligned offset free over its whole
// lifetime. The resulting arena is what an MCU deployment would
// statically allocate in SRAM — tests/test_memory_planner.cpp checks it
// against hw/memory_model's predicted peak on sampled genotypes, and
// the compile report logs the ratio.
//
// Constants are flash-resident and get no arena bytes; `skip_connect`
// edges alias their producer in the IR and so cost nothing here either.
#pragma once

#include <string>
#include <vector>

#include "src/ir/graph.hpp"

namespace micronas::rt {

/// Largest buffer alignment plan_memory accepts. Bounding it lets
/// check_plan cap a deserialized plan's naive_bytes (sum of value
/// sizes plus at most this much slack per buffer) so a hostile package
/// cannot declare an arbitrarily large arena.
inline constexpr int kMaxPlanAlignment = 64;

struct MemoryPlanOptions {
  int alignment = 16;  // in [1, kMaxPlanAlignment]
  /// Plan every activation at `batch` times its graph size: the arena a
  /// rt::BatchedExecutor compiled at batch capacity `batch` needs.
  /// Liveness is batch-invariant (the schedule does not change), so the
  /// batch-N plan is the batch-1 plan with every buffer scaled — a
  /// partial batch simply uses a prefix of each buffer.
  int batch = 1;
};

/// One value's slot in the arena.
struct BufferPlacement {
  int node_id = -1;
  long long offset = 0;
  long long size = 0;       // bytes (unaligned true size)
  int def_step = 0;         // schedule step producing the value
  int last_use_step = 0;    // last schedule step reading it
};

struct MemoryPlan {
  long long arena_bytes = 0;  // planned peak (max over placements)
  long long naive_bytes = 0;  // every buffer distinct — no lifetime reuse
  std::vector<BufferPlacement> buffers;   // sorted by node_id
  std::vector<int> schedule;              // executed node ids, in order

  /// Placement for a node id; nullptr for consts / planned-out values.
  const BufferPlacement* find(int node_id) const;

  double reuse_factor() const {
    return arena_bytes > 0 ? static_cast<double>(naive_bytes) / static_cast<double>(arena_bytes)
                           : 1.0;
  }

  /// Human-readable per-op schedule with offsets (the memory-plan
  /// report section of CompileReport).
  std::string to_string(const ir::Graph& graph) const;
};

/// Plan the graph. Throws std::logic_error if any two placements with
/// overlapping lifetimes overlap in the arena (internal invariant,
/// checked before returning).
MemoryPlan plan_memory(const ir::Graph& graph, const MemoryPlanOptions& options = {});

/// Re-derive schedule and liveness from `graph` and check `plan`
/// against them: coverage (every non-const value placed, nothing
/// else), sizes, def/last-use steps, offsets within [0, arena_bytes],
/// and the no-overlap-while-live invariant. Throws std::logic_error on
/// the first violation — the deserializer's fail-closed gate before a
/// loaded plan ever reaches an Executor.
void check_plan(const ir::Graph& graph, const MemoryPlan& plan);

}  // namespace micronas::rt
