// Static arena memory planner: liveness analysis + greedy-by-size
// offset assignment (the TFLite-Micro planning strategy), extended with
// three footprint-shrinking rungs that all preserve bit-identical
// execution:
//
//   1. schedule reordering — done upstream by the compiler's
//      schedule-reorder pass (src/compile/passes.hpp), which permutes
//      the node list this planner treats as the schedule;
//   2. in-place aliasing — an elementwise op whose input dies at the op
//      (qadd/qrelu/add/relu, plus the global-avg-pools, whose serial
//      kernels read every input byte before the output byte that
//      overwrites it) shares the input's storage: its BufferPlacement
//      carries `alias_of` and the pair is placed as one region;
//   3. row-strip streaming — when `arena_budget` is set and the plain
//      plan exceeds it, stride-1 same-spatial qconv2d/qavg_pool nodes
//      whose input dies at the op execute bottom-up in halo-correct row
//      strips through a small executor-owned scratch (recorded as
//      `stream_scratch_bytes`, sized like the im2col `columns_`
//      scratch), letting output storage overlay input storage so the
//      pair costs max(|x|, |y|) instead of |x| + |y|.
//
// The node list of an ir::Graph is its execution schedule, so value
// lifetimes are intervals over schedule steps: a value is live from the
// step that defines it to the last step that consumes it (the graph
// output stays live to the end). Buffers whose lifetimes do not
// intersect may share arena bytes; the planner places storage groups
// largest first, each at the lowest aligned offset free over its whole
// lifetime. The resulting arena is what an MCU deployment would
// statically allocate in SRAM — tests/test_memory_planner.cpp checks it
// against hw/memory_model's predicted peak on sampled genotypes, and
// the compile report logs the ratio.
//
// Constants are flash-resident and get no arena bytes; `skip_connect`
// edges alias their producer in the IR and so cost nothing here either.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "src/ir/graph.hpp"

namespace micronas::rt {

/// Largest buffer alignment plan_memory accepts. Bounding it lets
/// check_plan cap a deserialized plan's naive_bytes (sum of value
/// sizes plus at most this much slack per buffer) so a hostile package
/// cannot declare an arbitrarily large arena.
inline constexpr int kMaxPlanAlignment = 64;

struct MemoryPlanOptions {
  int alignment = 16;  // in [1, kMaxPlanAlignment]
  /// Plan every activation at `batch` times its graph size: the arena a
  /// rt::BatchedExecutor compiled at batch capacity `batch` needs.
  /// Liveness is batch-invariant (the schedule does not change), so the
  /// batch-N plan is the batch-1 plan with every buffer scaled — a
  /// partial batch simply uses a prefix of each buffer.
  int batch = 1;
  /// Rung 2: let an elementwise op whose input dies at the op write
  /// over that input's buffer. Never changes results (the kernels read
  /// each input byte before the output byte that replaces it); purely
  /// an arena shrink.
  bool alias_inplace = true;
  /// Rung 3: hard activation-arena ceiling in bytes (0 = unbounded).
  /// When the plain plan exceeds it, the planner converts eligible
  /// conv/pool nodes to row-strip streaming until the plan fits, and
  /// throws std::runtime_error if it cannot. Like the executors'
  /// im2col scratch, the streaming scratch is accounted separately
  /// (stream_scratch_bytes), not against this budget.
  long long arena_budget = 0;
};

/// One value's slot in the arena.
struct BufferPlacement {
  int node_id = -1;
  long long offset = 0;
  long long size = 0;       // bytes (unaligned true size)
  int def_step = 0;         // schedule step producing the value
  int last_use_step = 0;    // last schedule step reading it
  /// In-place aliasing: id of the input node whose storage this value
  /// overwrites (-1 = none). Aliased placements share the target's
  /// offset; the pair is exempt from the no-overlap-while-live
  /// invariant because the producing kernel is in-place safe.
  int alias_of = -1;
};

/// One row-strip-streamed node: the op executes bottom-up in strips of
/// `strip_h` output rows through the executor's stream scratch, so its
/// output placement may overlay its (dying) input placement.
struct StripStream {
  int node_id = -1;
  int strip_h = 0;  // output rows per strip, in [1, out_h]
};

struct MemoryPlan {
  long long arena_bytes = 0;  // planned peak (max over placements)
  long long naive_bytes = 0;  // every buffer distinct — no lifetime reuse
  /// Executor-owned scratch for row-strip streaming (max over `strips`
  /// of one strip's gathered input rows + staged output rows, per
  /// sample). Accounted beside the arena, like the im2col scratch.
  long long stream_scratch_bytes = 0;
  std::vector<BufferPlacement> buffers;   // sorted by node_id
  std::vector<int> schedule;              // executed node ids, in order
  std::vector<StripStream> strips;        // sorted by node_id

  /// Placement for a node id; nullptr for consts / planned-out values.
  const BufferPlacement* find(int node_id) const;
  /// Strip geometry for a node id; nullptr if the node is not streamed.
  const StripStream* find_strip(int node_id) const;

  /// naive/arena compression from lifetime reuse. Degenerate cases are
  /// explicit: a plan with no placements at all (both totals zero, e.g.
  /// a fully folded graph) reuses nothing and reports 1.0; an empty
  /// arena that still claims naive bytes is infinitely compressed —
  /// report infinity rather than masking it as 1.0.
  double reuse_factor() const {
    if (arena_bytes > 0) {
      return static_cast<double>(naive_bytes) / static_cast<double>(arena_bytes);
    }
    return naive_bytes == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  }

  /// Human-readable per-op schedule with offsets (the memory-plan
  /// report section of CompileReport).
  std::string to_string(const ir::Graph& graph) const;
};

/// True for op kinds whose kernels may write their output in place over
/// a dying input: elementwise ops read in[i] before writing out[i], the
/// (serial) global-avg-pools never write an output byte before the
/// input byte it replaces has been consumed, and quantize shrinks
/// f32 -> i8 front-to-back so every write trails the reads. Dequantize
/// widens (out[0] spans in[1..3]) and is excluded.
bool inplace_alias_op(ir::OpKind op);

/// True when `node` has row-strip-streamable geometry: kQConv2d or
/// kQAvgPool, stride 1, output spatial dims equal to the input's (which
/// forces kernel == 2*pad + 1), a non-const input, and per-sample
/// storage layouts that overlay safely (batch dim 1, or equal channel
/// counts). Liveness (input dies at the op) is checked by the planner,
/// not here.
bool strip_streamable(const ir::Graph& graph, const ir::Node& node);

/// Executor scratch bytes one strip of `strip_h` output rows needs for
/// `node_id` (gathered zero-point-padded input rows + staged output
/// rows, both int8, per sample). Shared by the planner, check_plan and
/// the executors so the accounting cannot drift.
long long strip_scratch_bytes(const ir::Graph& graph, int node_id, int strip_h);

/// Plan the graph. Throws std::logic_error if any two placements with
/// overlapping lifetimes overlap in the arena (internal invariant,
/// checked before returning) and std::runtime_error if
/// options.arena_budget is set but unreachable even with every eligible
/// node streamed.
MemoryPlan plan_memory(const ir::Graph& graph, const MemoryPlanOptions& options = {});

/// Re-derive schedule and liveness from `graph` and check `plan`
/// against them: coverage (every non-const value placed, nothing
/// else), sizes, def/last-use steps, offsets within [0, arena_bytes],
/// the no-overlap-while-live invariant (storage groups formed by
/// alias/strip entries excepted), alias eligibility (in-place-safe op,
/// target is a dying input, offsets shared, output fits) and strip
/// eligibility (streamable geometry, dying input, shared offset,
/// strip_h in range, scratch accounting). Throws std::logic_error on
/// the first violation — the deserializer's fail-closed gate before a
/// loaded plan ever reaches an Executor.
void check_plan(const ir::Graph& graph, const MemoryPlan& plan);

}  // namespace micronas::rt
