#include "src/rt/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "src/obs/trace.hpp"
#include "src/rt/kernels_f32.hpp"
#include "src/rt/kernels_int8.hpp"
#include "src/rt/kernels_int8_gemm.hpp"

namespace micronas::rt {

namespace {

/// Per-node Σ_k w[c,k] for kQConv2d / kQLinear (shared by Executor and
/// BatchedExecutor; the kernels' zero-point correction term).
std::vector<std::vector<std::int32_t>> compute_weight_sums(const ir::Graph& graph) {
  std::vector<std::vector<std::int32_t>> sums_by_node(static_cast<std::size_t>(graph.size()));
  for (const auto& node : graph.nodes()) {
    if (node.op != ir::OpKind::kQConv2d && node.op != ir::OpKind::kQLinear) continue;
    const ir::Node& w = graph.node(node.inputs[1]);
    const int cout = w.type.shape[0];
    const auto patch = w.type.shape.numel() / static_cast<std::size_t>(cout);
    std::vector<std::int32_t> sums(static_cast<std::size_t>(cout), 0);
    for (int c = 0; c < cout; ++c) {
      std::int32_t s = 0;
      for (std::size_t k = 0; k < patch; ++k) {
        s += w.i8_data[static_cast<std::size_t>(c) * patch + k];
      }
      sums[static_cast<std::size_t>(c)] = s;
    }
    sums_by_node[static_cast<std::size_t>(node.id)] = std::move(sums);
  }
  return sums_by_node;
}

/// Conv scratch high-water in BYTES across the graph's kQConv2d nodes:
/// whichever of the scalar kernel's int8 im2col and the dot16 GEMM's
/// int16 image + operand (qconv_gemm_scratch_bytes) is larger, since
/// kernel selection happens per dispatch. Scales with each node's own
/// batch dimension times `batch_mult` (the BatchedExecutor's capacity;
/// 1 for Executor).
std::size_t max_qconv_scratch_bytes(const ir::Graph& graph, int batch_mult) {
  std::size_t max_bytes = 0;
  for (const auto& node : graph.nodes()) {
    if (node.op != ir::OpKind::kQConv2d) continue;
    const ir::Node& x = graph.node(node.inputs[0]);
    const std::size_t batch = static_cast<std::size_t>(batch_mult) *
                              static_cast<std::size_t>(node.type.shape[0]);
    const std::size_t scalar_bytes = batch * static_cast<std::size_t>(node.type.shape[2]) *
                                     static_cast<std::size_t>(node.type.shape[3]) *
                                     static_cast<std::size_t>(x.type.shape[1]) *
                                     static_cast<std::size_t>(node.conv.kernel * node.conv.kernel);
    const std::size_t gemm_bytes =
        batch * qconv_gemm_scratch_bytes(x.type.shape[1], x.type.shape[2], x.type.shape[3],
                                         node.conv.kernel, node.conv.pad, node.type.shape[2],
                                         node.type.shape[3]);
    max_bytes = std::max({max_bytes, scalar_bytes, gemm_bytes});
  }
  return max_bytes;
}

/// Row-strip streamed qconv2d / qavg_pool over ONE sample whose output
/// plane overlays its input plane (the planner placed both at one
/// offset). Strips of `strip_h` output rows run bottom-up; each
/// iteration first gathers strip si's input rows (halo included, with
/// padding materialized as the input zero point — bit-identical to the
/// padded kernel, whose pad cells contribute zero after the zero-point
/// correction), then scatters the previously computed strip from the
/// staging area, then computes strip si into staging. Scattered rows
/// start at least `strip_h >= pad` rows below anything a future gather
/// still reads, so the overlay never clobbers live input. The partial
/// strip, if any, is strip 0 (the top), keeping every in-loop scatter
/// at full strip height.
void run_strip_streamed(const ir::Node& node, const Shape& xs, int strip_h,
                        const std::int8_t* x, std::int8_t* y, std::int8_t* scratch,
                        std::int8_t* columns, const std::int32_t* weight_sum,
                        const std::int8_t* weight, const std::int32_t* bias,
                        const PackedWeights* packed, ThreadPool* pool) {
  const int cin = xs[1];
  const int in_h = xs[2];
  const int in_w = xs[3];
  const int cout = node.type.shape[1];
  const int out_h = node.type.shape[2];
  const int out_w = node.type.shape[3];
  const int k = node.conv.kernel;
  const int pad = node.conv.pad;
  const int wp = in_w + 2 * pad;
  const int in_zp = node.quant.in_q.zero_point;
  // Same split as strip_scratch_bytes: gather block (aligned), then stage.
  const long long gather_cap = static_cast<long long>(cin) * (strip_h - 1 + k) * wp;
  std::int8_t* gather = scratch;
  std::int8_t* stage =
      scratch + (gather_cap + kMaxPlanAlignment - 1) / kMaxPlanAlignment * kMaxPlanAlignment;
  const int zp_byte = static_cast<int>(static_cast<std::int8_t>(in_zp));

  const int strips = (out_h + strip_h - 1) / strip_h;
  int prev_a = -1;
  int prev_h = 0;
  for (int si = strips - 1; si >= 0; --si) {
    const int end = out_h - (strips - 1 - si) * strip_h;
    const int a = std::max(0, end - strip_h);
    const int h = end - a;
    const int in_rows = h - 1 + k;  // h + 2*pad: the strip plus its halo
    for (int c = 0; c < cin; ++c) {
      std::int8_t* plane = gather + static_cast<std::ptrdiff_t>(c) * in_rows * wp;
      for (int r = 0; r < in_rows; ++r) {
        const int iy = a - pad + r;
        std::int8_t* row = plane + static_cast<std::ptrdiff_t>(r) * wp;
        if (iy < 0 || iy >= in_h) {
          std::memset(row, zp_byte, static_cast<std::size_t>(wp));
          continue;
        }
        if (pad > 0) {
          std::memset(row, zp_byte, static_cast<std::size_t>(pad));
          std::memset(row + pad + in_w, zp_byte, static_cast<std::size_t>(pad));
        }
        std::memcpy(row + pad, x + (static_cast<std::ptrdiff_t>(c) * in_h + iy) * in_w,
                    static_cast<std::size_t>(in_w));
      }
    }
    if (prev_a >= 0) {
      for (int c = 0; c < cout; ++c) {
        std::memcpy(y + (static_cast<std::ptrdiff_t>(c) * out_h + prev_a) * out_w,
                    stage + static_cast<std::ptrdiff_t>(c) * prev_h * out_w,
                    static_cast<std::size_t>(prev_h) * static_cast<std::size_t>(out_w));
      }
    }
    if (node.op == ir::OpKind::kQConv2d) {
      QConv2dArgs ar;
      ar.batch = 1;
      ar.cin = cin;
      ar.h = in_rows;
      ar.w = wp;
      ar.cout = cout;
      ar.kernel = k;
      ar.stride = 1;
      ar.pad = 0;  // padding is already materialized in the gather
      ar.out_h = h;
      ar.out_w = out_w;
      ar.in_zp = in_zp;
      ar.out_zp = node.quant.out_q.zero_point;
      ar.fused_relu = node.conv.fused_relu;
      ar.input = gather;
      ar.weight = weight;
      ar.bias = bias;
      ar.weight_sum = weight_sum;
      ar.mantissa = node.quant.mantissa.data();
      ar.shift = node.quant.shift.data();
      ar.columns = columns;
      ar.output = stage;
      qconv2d_auto(ar, packed, pool);
    } else {
      qavg_pool(gather, stage, 1, cin, in_rows, wp, k, 1, 0, h, out_w, in_zp,
                node.quant.mantissa[0], node.quant.shift[0], node.quant.out_q.zero_point);
    }
    prev_a = a;
    prev_h = h;
  }
  for (int c = 0; c < cout; ++c) {
    std::memcpy(y + (static_cast<std::ptrdiff_t>(c) * out_h + prev_a) * out_w,
                stage + static_cast<std::ptrdiff_t>(c) * prev_h * out_w,
                static_cast<std::size_t>(prev_h) * static_cast<std::size_t>(out_w));
  }
}

/// Static per-node attribution (op name, selected kernel variant,
/// bytes touched, strip height) resolved once at executor
/// construction. The same facts feed obs span tags and the profile
/// accumulator, so the hot loop only reads this table.
std::vector<OpProfileEntry> build_profile_table(const ir::Graph& graph, const MemoryPlan& plan,
                                                const PackedWeightSet* packed) {
  std::vector<OpProfileEntry> table(static_cast<std::size_t>(graph.size()));
  for (const auto& node : graph.nodes()) {
    if (node.is_const() || node.op == ir::OpKind::kInput) continue;
    OpProfileEntry& e = table[static_cast<std::size_t>(node.id)];
    e.node_id = node.id;
    e.op = op_kind_name(node.op).c_str();  // static storage in op_kind_name
    e.bytes = node.type.bytes();
    for (const int id : node.inputs) {
      const ir::Node& in = graph.node(id);
      if (!in.is_const()) e.bytes += in.type.bytes();
    }
    if (const StripStream* strip = plan.find_strip(node.id)) e.strip_h = strip->strip_h;
    if (node.op == ir::OpKind::kQConv2d) {
      const Shape& x = graph.node(node.inputs[0]).type.shape;
      QConv2dArgs a{};
      a.batch = x[0];
      a.cin = x[1];
      a.h = x[2];
      a.w = x[3];
      a.cout = node.type.shape[1];
      a.kernel = node.conv.kernel;
      a.stride = node.conv.stride;
      a.pad = node.conv.pad;
      a.out_h = node.type.shape[2];
      a.out_w = node.type.shape[3];
      e.kernel = qconv_kernel_name(
          select_qconv_kernel(a, packed ? packed->find(node.id) : nullptr));
    } else if (node.op == ir::OpKind::kQLinear) {
      const Shape& x = graph.node(node.inputs[0]).type.shape;
      QLinearArgs a{};
      a.batch = x[0];
      a.in_features = x[1];
      a.out_features = node.type.shape[1];
      e.kernel = qlinear_kernel_name(
          select_qlinear_kernel(a, packed ? packed->find(node.id) : nullptr));
    }
  }
  return table;
}

/// Span + optional timing around one node dispatch; shared by both
/// executors' walk loops. Disabled tracing and profiling cost one
/// predicted branch each.
class NodeScope {
 public:
  NodeScope(OpProfileEntry& entry, bool profile)
      : entry_(entry), span_(entry.op), profile_(profile) {
    if (span_.active()) {
      span_.tag("node", static_cast<long long>(entry_.node_id));
      if (entry_.kernel[0] != '\0') span_.tag("kernel", entry_.kernel);
      span_.tag("bytes", entry_.bytes);
      if (entry_.strip_h > 0) span_.tag("strip_h", static_cast<long long>(entry_.strip_h));
    }
    if (profile_) start_us_ = obs::now_us();
  }
  ~NodeScope() {
    if (profile_) {
      entry_.calls += 1;
      entry_.total_ms += (obs::now_us() - start_us_) / 1000.0;
    }
  }
  NodeScope(const NodeScope&) = delete;
  NodeScope& operator=(const NodeScope&) = delete;

 private:
  OpProfileEntry& entry_;
  obs::Span span_;
  bool profile_;
  double start_us_ = 0.0;
};

}  // namespace

Executor::Executor(const ir::Graph& graph, const MemoryPlan& plan, ExecOptions options)
    : graph_(graph), plan_(plan), planned_(true), options_(options) {
  prepare();
}

Executor::Executor(const ir::Graph& graph, ExecOptions options)
    : graph_(graph), planned_(false), options_(options) {
  prepare();
}

void Executor::prepare() {
  graph_.validate();
  const ir::Node& out = graph_.node(graph_.output());
  if (out.type.dtype != ir::DType::kF32) {
    throw std::invalid_argument("Executor: graph must end in a f32 node (add a dequantize)");
  }
  if (graph_.node(graph_.input()).type.dtype != ir::DType::kF32) {
    throw std::invalid_argument("Executor: graph input must be f32 (insert a quantize node)");
  }
  if (options_.threads != 1) pool_ = std::make_unique<ThreadPool>(options_.threads);

  if (planned_) {
    arena_.resize(static_cast<std::size_t>(plan_.arena_bytes));
  } else {
    private_buffers_.resize(static_cast<std::size_t>(graph_.size()));
    for (const auto& node : graph_.nodes()) {
      if (node.is_const()) continue;
      private_buffers_[static_cast<std::size_t>(node.id)].resize(
          static_cast<std::size_t>(node.type.bytes()));
    }
  }

  weight_sums_ = compute_weight_sums(graph_);
  columns_.resize(max_qconv_scratch_bytes(graph_, 1));
  stream_scratch_.resize(static_cast<std::size_t>(plan_.stream_scratch_bytes));
  if (options_.packed != nullptr) {
    packed_ = options_.packed;
  } else if (fast_kernels_enabled()) {
    owned_packed_ = pack_graph_weights(graph_);
    packed_ = &owned_packed_;
  }
  profile_ = build_profile_table(graph_, plan_, packed_);
}

std::byte* Executor::buffer(int node_id) {
  return const_cast<std::byte*>(read_buffer(node_id));
}

const std::byte* Executor::read_buffer(int node_id) const {
  const ir::Node& node = graph_.node(node_id);
  if (node.is_const()) {
    switch (node.type.dtype) {
      case ir::DType::kF32:
        return reinterpret_cast<const std::byte*>(node.f32_data.data().data());
      case ir::DType::kI8:
        return reinterpret_cast<const std::byte*>(node.i8_data.data());
      case ir::DType::kI32:
        return reinterpret_cast<const std::byte*>(node.i32_data.data());
    }
  }
  if (planned_) {
    const BufferPlacement* b = plan_.find(node_id);
    if (!b) throw std::logic_error("Executor: node has no arena placement");
    return arena_.data() + b->offset;
  }
  return private_buffers_[static_cast<std::size_t>(node_id)].data();
}

const float* Executor::f32_in(int node_id) const {
  return reinterpret_cast<const float*>(read_buffer(node_id));
}

const std::int8_t* Executor::i8_in(int node_id) const {
  return reinterpret_cast<const std::int8_t*>(read_buffer(node_id));
}

Tensor Executor::run(const Tensor& input) {
  const ir::Node& in_node = graph_.node(graph_.input());
  if (!(input.shape() == in_node.type.shape)) {
    throw std::invalid_argument("Executor::run: input shape " + input.shape().to_string() +
                                " != graph input " + in_node.type.shape.to_string());
  }
  std::memcpy(buffer(in_node.id), input.data().data(), input.numel() * sizeof(float));
  if (observer_) observer_(in_node.id, input.data());

  OBS_SPAN("rt.run");
  for (const auto& node : graph_.nodes()) {
    if (node.is_const() || node.op == ir::OpKind::kInput) continue;
    {
      NodeScope scope(profile_[static_cast<std::size_t>(node.id)], options_.profile);
      dispatch(node);
    }
    if (observer_ && node.type.dtype == ir::DType::kF32) {
      observer_(node.id, std::span<const float>(f32_in(node.id), node.type.shape.numel()));
    }
  }

  const ir::Node& out = graph_.node(graph_.output());
  Tensor result(out.type.shape);
  std::memcpy(result.data().data(), read_buffer(out.id), result.numel() * sizeof(float));
  return result;
}

void Executor::dispatch(const ir::Node& node) {
  const auto& shape = node.type.shape;
  const auto in_shape = [&](std::size_t i) -> const Shape& {
    return graph_.node(node.inputs[i]).type.shape;
  };

  switch (node.op) {
    case ir::OpKind::kConv2d: {
      const Shape& x = in_shape(0);
      const float* bias = node.inputs.size() == 3 ? f32_in(node.inputs[2]) : nullptr;
      conv2d_f32(f32_in(node.inputs[0]), f32_in(node.inputs[1]), bias,
                 reinterpret_cast<float*>(buffer(node.id)), x[0], x[1], x[2], x[3], shape[1],
                 node.conv.kernel, node.conv.stride, node.conv.pad, shape[2], shape[3],
                 node.conv.fused_relu, pool_.get());
      return;
    }
    case ir::OpKind::kBatchNorm: {
      const Shape& x = in_shape(0);
      batch_norm_f32(f32_in(node.inputs[0]), f32_in(node.inputs[1]), f32_in(node.inputs[2]),
                     f32_in(node.inputs[3]), f32_in(node.inputs[4]),
                     reinterpret_cast<float*>(buffer(node.id)), x[0], x[1], x[2] * x[3],
                     node.conv.bn_eps);
      return;
    }
    case ir::OpKind::kChannelAffine: {
      const Shape& x = in_shape(0);
      channel_affine_f32(f32_in(node.inputs[0]), f32_in(node.inputs[1]), f32_in(node.inputs[2]),
                         reinterpret_cast<float*>(buffer(node.id)), x[0], x[1], x[2] * x[3]);
      return;
    }
    case ir::OpKind::kRelu:
      relu_f32(f32_in(node.inputs[0]), reinterpret_cast<float*>(buffer(node.id)),
               shape.numel());
      return;
    case ir::OpKind::kAvgPool: {
      const Shape& x = in_shape(0);
      avg_pool_f32(f32_in(node.inputs[0]), reinterpret_cast<float*>(buffer(node.id)), x[0],
                   x[1], x[2], x[3], node.conv.kernel, node.conv.stride, node.conv.pad, shape[2],
                   shape[3]);
      return;
    }
    case ir::OpKind::kAdd:
      add_f32(f32_in(node.inputs[0]), f32_in(node.inputs[1]),
              reinterpret_cast<float*>(buffer(node.id)), shape.numel());
      return;
    case ir::OpKind::kGlobalAvgPool: {
      const Shape& x = in_shape(0);
      global_avg_pool_f32(f32_in(node.inputs[0]), reinterpret_cast<float*>(buffer(node.id)),
                          x[0], x[1], x[2] * x[3]);
      return;
    }
    case ir::OpKind::kLinear: {
      const Shape& x = in_shape(0);
      const float* bias = node.inputs.size() == 3 ? f32_in(node.inputs[2]) : nullptr;
      linear_f32(f32_in(node.inputs[0]), f32_in(node.inputs[1]), bias,
                 reinterpret_cast<float*>(buffer(node.id)), x[0], x[1], shape[1]);
      return;
    }
    case ir::OpKind::kQuantize:
      quantize_buffer(f32_in(node.inputs[0]),
                      reinterpret_cast<std::int8_t*>(buffer(node.id)), shape.numel(),
                      node.quant.out_q.scale, node.quant.out_q.zero_point);
      return;
    case ir::OpKind::kDequantize:
      dequantize_buffer(i8_in(node.inputs[0]), reinterpret_cast<float*>(buffer(node.id)),
                        shape.numel(), node.quant.in_q.scale, node.quant.in_q.zero_point);
      return;
    case ir::OpKind::kQConv2d: {
      const Shape& x = in_shape(0);
      if (const StripStream* strip = plan_.find_strip(node.id)) {
        // Output overlays input: stream each sample in row strips. The
        // planner only streams nodes whose per-sample input and output
        // bases coincide (batch 1, or cin == cout).
        const std::int8_t* xb = i8_in(node.inputs[0]);
        std::int8_t* yb = reinterpret_cast<std::int8_t*>(buffer(node.id));
        const std::ptrdiff_t per_in = static_cast<std::ptrdiff_t>(x[1]) * x[2] * x[3];
        const std::ptrdiff_t per_out = static_cast<std::ptrdiff_t>(shape[1]) * shape[2] * shape[3];
        for (int s = 0; s < x[0]; ++s) {
          run_strip_streamed(node, x, strip->strip_h, xb + s * per_in, yb + s * per_out,
                             stream_scratch_.data(), columns_.data(),
                             weight_sums_[static_cast<std::size_t>(node.id)].data(),
                             i8_in(node.inputs[1]),
                             reinterpret_cast<const std::int32_t*>(read_buffer(node.inputs[2])),
                             packed_ ? packed_->find(node.id) : nullptr, pool_.get());
        }
        return;
      }
      QConv2dArgs a;
      a.batch = x[0];
      a.cin = x[1];
      a.h = x[2];
      a.w = x[3];
      a.cout = shape[1];
      a.kernel = node.conv.kernel;
      a.stride = node.conv.stride;
      a.pad = node.conv.pad;
      a.out_h = shape[2];
      a.out_w = shape[3];
      a.in_zp = node.quant.in_q.zero_point;
      a.out_zp = node.quant.out_q.zero_point;
      a.fused_relu = node.conv.fused_relu;
      a.input = i8_in(node.inputs[0]);
      a.weight = i8_in(node.inputs[1]);
      a.bias = reinterpret_cast<const std::int32_t*>(read_buffer(node.inputs[2]));
      a.weight_sum = weight_sums_[static_cast<std::size_t>(node.id)].data();
      a.mantissa = node.quant.mantissa.data();
      a.shift = node.quant.shift.data();
      a.columns = columns_.data();
      a.output = reinterpret_cast<std::int8_t*>(buffer(node.id));
      qconv2d_auto(a, packed_ ? packed_->find(node.id) : nullptr, pool_.get());
      return;
    }
    case ir::OpKind::kQAvgPool: {
      const Shape& x = in_shape(0);
      if (const StripStream* strip = plan_.find_strip(node.id)) {
        const std::int8_t* xb = i8_in(node.inputs[0]);
        std::int8_t* yb = reinterpret_cast<std::int8_t*>(buffer(node.id));
        const std::ptrdiff_t per = static_cast<std::ptrdiff_t>(x[1]) * x[2] * x[3];
        for (int s = 0; s < x[0]; ++s) {
          run_strip_streamed(node, x, strip->strip_h, xb + s * per, yb + s * per,
                             stream_scratch_.data(), columns_.data(), nullptr, nullptr, nullptr,
                             nullptr, nullptr);
        }
        return;
      }
      qavg_pool(i8_in(node.inputs[0]), reinterpret_cast<std::int8_t*>(buffer(node.id)), x[0],
                x[1], x[2], x[3], node.conv.kernel, node.conv.stride, node.conv.pad, shape[2],
                shape[3], node.quant.in_q.zero_point, node.quant.mantissa[0],
                node.quant.shift[0], node.quant.out_q.zero_point);
      return;
    }
    case ir::OpKind::kQAdd:
      qadd(i8_in(node.inputs[0]), i8_in(node.inputs[1]),
           reinterpret_cast<std::int8_t*>(buffer(node.id)), shape.numel(),
           node.quant.in_q.zero_point, node.quant.mantissa[0], node.quant.shift[0],
           node.quant.in2_q.zero_point, node.quant.mantissa2, node.quant.shift2,
           node.quant.out_q.zero_point);
      return;
    case ir::OpKind::kQGlobalAvgPool: {
      const Shape& x = in_shape(0);
      qglobal_avg_pool(i8_in(node.inputs[0]), reinterpret_cast<std::int8_t*>(buffer(node.id)),
                       x[0], x[1], x[2], x[3], node.quant.in_q.zero_point,
                       node.quant.mantissa[0], node.quant.shift[0],
                       node.quant.out_q.zero_point);
      return;
    }
    case ir::OpKind::kQLinear: {
      const Shape& x = in_shape(0);
      QLinearArgs a;
      a.batch = x[0];
      a.in_features = x[1];
      a.out_features = shape[1];
      a.in_zp = node.quant.in_q.zero_point;
      a.out_zp = node.quant.out_q.zero_point;
      a.input = i8_in(node.inputs[0]);
      a.weight = i8_in(node.inputs[1]);
      a.bias = reinterpret_cast<const std::int32_t*>(read_buffer(node.inputs[2]));
      a.weight_sum = weight_sums_[static_cast<std::size_t>(node.id)].data();
      a.mantissa = node.quant.mantissa.data();
      a.shift = node.quant.shift.data();
      a.output = reinterpret_cast<std::int8_t*>(buffer(node.id));
      qlinear_auto(a, packed_ ? packed_->find(node.id) : nullptr, pool_.get());
      return;
    }
    case ir::OpKind::kQRelu:
      qrelu(i8_in(node.inputs[0]), reinterpret_cast<std::int8_t*>(buffer(node.id)),
            shape.numel(), node.quant.out_q.zero_point);
      return;
    case ir::OpKind::kInput:
    case ir::OpKind::kConst:
      return;  // handled by the caller
  }
  throw std::logic_error("Executor::dispatch: unhandled op kind");
}

// ------------------------------------------------------------- batched

BatchedExecutor::BatchedExecutor(const ir::Graph& graph, int batch_capacity,
                                 ExecOptions options, MemoryPlanOptions plan_options)
    : graph_(graph), capacity_(batch_capacity), options_(options) {
  if (capacity_ < 1) {
    throw std::invalid_argument("BatchedExecutor: batch capacity must be >= 1");
  }
  plan_options.batch = capacity_;
  plan_ = plan_memory(graph_, plan_options);
  prepare();
}

BatchedExecutor::BatchedExecutor(const ir::Graph& graph, MemoryPlan plan, int batch_capacity,
                                 ExecOptions options)
    : graph_(graph), plan_(std::move(plan)), capacity_(batch_capacity), options_(options) {
  if (capacity_ < 1) {
    throw std::invalid_argument("BatchedExecutor: batch capacity must be >= 1");
  }
  // The plan must be a batch-capacity plan of this graph: every
  // placement holds capacity_ samples of its value.
  for (const BufferPlacement& b : plan_.buffers) {
    const long long want = graph_.node(b.node_id).type.bytes() * capacity_;
    if (b.size != want) {
      throw std::invalid_argument("BatchedExecutor: plan holds " + std::to_string(b.size) +
                                  " B for node %" + std::to_string(b.node_id) + ", want " +
                                  std::to_string(want) + " B at batch capacity " +
                                  std::to_string(capacity_));
    }
    // At capacity > 1 the per-sample slot strides of an in-place pair
    // only line up when the two buffers are the same size (plan_memory
    // enforces this; a hand-built plan must not bypass it).
    if (capacity_ > 1 && b.alias_of >= 0) {
      const BufferPlacement* target = plan_.find(b.alias_of);
      if (target == nullptr || target->size != b.size) {
        throw std::invalid_argument(
            "BatchedExecutor: aliased placement %" + std::to_string(b.node_id) +
            " must match its target's size at batch capacity > 1");
      }
    }
  }
  for (const StripStream& s : plan_.strips) {
    const BufferPlacement* y = plan_.find(s.node_id);
    const BufferPlacement* x = plan_.find(graph_.node(s.node_id).inputs[0]);
    if (capacity_ > 1 && (y == nullptr || x == nullptr || y->size != x->size)) {
      throw std::invalid_argument(
          "BatchedExecutor: streamed placement %" + std::to_string(s.node_id) +
          " must match its input's size at batch capacity > 1");
    }
  }
  prepare();
}

void BatchedExecutor::prepare() {
  graph_.validate();
  const ir::Node& in = graph_.node(graph_.input());
  const ir::Node& out = graph_.node(graph_.output());
  if (in.type.dtype != ir::DType::kF32 || out.type.dtype != ir::DType::kF32) {
    throw std::invalid_argument("BatchedExecutor: graph must start and end in f32 nodes");
  }
  if (in.type.shape[0] != 1) {
    throw std::invalid_argument(
        "BatchedExecutor: graph must be compiled at batch 1 — the input batch dim is the "
        "sample axis the executor widens; got input " +
        in.type.shape.to_string());
  }
  if (options_.threads != 1) pool_ = std::make_unique<ThreadPool>(options_.threads);
  arena_.resize(static_cast<std::size_t>(plan_.arena_bytes));
  weight_sums_ = compute_weight_sums(graph_);
  columns_.resize(max_qconv_scratch_bytes(graph_, capacity_));
  stream_scratch_.resize(static_cast<std::size_t>(plan_.stream_scratch_bytes));
  if (options_.packed != nullptr) {
    packed_ = options_.packed;
  } else if (fast_kernels_enabled()) {
    owned_packed_ = pack_graph_weights(graph_);
    packed_ = &owned_packed_;
  }
  profile_ = build_profile_table(graph_, plan_, packed_);
}

std::size_t BatchedExecutor::sample_io_bytes(const ir::Graph& graph, const ir::Node& node) {
  // f32 conv/linear cost is dominated by per-element arithmetic, not
  // the bytes moved — always worth a pool dispatch.
  if (node.op == ir::OpKind::kConv2d || node.op == ir::OpKind::kLinear) return kHeavySample;
  std::size_t bytes = static_cast<std::size_t>(node.type.bytes());
  for (const int id : node.inputs) {
    const ir::Node& in = graph.node(id);
    if (in.is_const()) continue;  // weights/params are shared, not per-sample
    bytes += static_cast<std::size_t>(in.type.bytes());
  }
  return bytes;
}

std::byte* BatchedExecutor::buffer(int node_id) {
  return const_cast<std::byte*>(read_buffer(node_id));
}

const std::byte* BatchedExecutor::read_buffer(int node_id) const {
  const ir::Node& node = graph_.node(node_id);
  if (node.is_const()) {
    switch (node.type.dtype) {
      case ir::DType::kF32:
        return reinterpret_cast<const std::byte*>(node.f32_data.data().data());
      case ir::DType::kI8:
        return reinterpret_cast<const std::byte*>(node.i8_data.data());
      case ir::DType::kI32:
        return reinterpret_cast<const std::byte*>(node.i32_data.data());
    }
  }
  const BufferPlacement* b = plan_.find(node_id);
  if (!b) throw std::logic_error("BatchedExecutor: node has no arena placement");
  return arena_.data() + b->offset;
}

void BatchedExecutor::each_sample(int n, std::size_t sample_bytes,
                                  const std::function<void(int)>& fn) {
  // A pool dispatch costs on the order of a context switch; for a
  // memory-bound broadcast op that only pays off once a sample touches
  // tens of KB (kMinParallelSampleBytes, compared against
  // sample_io_bytes so every op is measured in the same unit). Below
  // that the serial loop is strictly faster, and the results are
  // identical either way (samples are independent).
  if (pool_ && pool_->size() > 1 && n > 1 && sample_bytes >= kMinParallelSampleBytes) {
    pool_->parallel_for(static_cast<std::size_t>(n),
                        [&fn](std::size_t i) { fn(static_cast<int>(i)); });
  } else {
    for (int i = 0; i < n; ++i) fn(i);
  }
}

std::vector<Tensor> BatchedExecutor::run_batch(std::span<const Tensor* const> inputs) {
  const int n = static_cast<int>(inputs.size());
  if (n < 1 || n > capacity_) {
    throw std::invalid_argument("BatchedExecutor::run_batch: batch of " + std::to_string(n) +
                                " outside [1, capacity " + std::to_string(capacity_) + "]");
  }
  const ir::Node& in_node = graph_.node(graph_.input());
  for (int i = 0; i < n; ++i) {
    if (!(inputs[static_cast<std::size_t>(i)]->shape() == in_node.type.shape)) {
      throw std::invalid_argument(
          "BatchedExecutor::run_batch: input " + std::to_string(i) + " shape " +
          inputs[static_cast<std::size_t>(i)]->shape().to_string() + " != graph input " +
          in_node.type.shape.to_string());
    }
  }

  const std::size_t in_per = in_node.type.shape.numel();
  float* in_buf = reinterpret_cast<float*>(buffer(in_node.id));
  for (int i = 0; i < n; ++i) {
    std::memcpy(in_buf + static_cast<std::ptrdiff_t>(i) * in_per,
                inputs[static_cast<std::size_t>(i)]->data().data(), in_per * sizeof(float));
  }

  obs::Span batch_span("rt.run_batch");
  batch_span.tag("batch", static_cast<long long>(n));
  for (const auto& node : graph_.nodes()) {
    if (node.is_const() || node.op == ir::OpKind::kInput) continue;
    NodeScope scope(profile_[static_cast<std::size_t>(node.id)], options_.profile);
    dispatch(node, n);
  }

  const ir::Node& out = graph_.node(graph_.output());
  const std::size_t out_per = out.type.shape.numel();
  const float* out_buf = reinterpret_cast<const float*>(read_buffer(out.id));
  std::vector<Tensor> results;
  results.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Tensor r(out.type.shape);
    // A fully folded graph ends in a constant: every sample's logits
    // are that constant (no per-sample slot to read).
    const float* src =
        out.is_const() ? out_buf : out_buf + static_cast<std::ptrdiff_t>(i) * out_per;
    std::memcpy(r.data().data(), src, out_per * sizeof(float));
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<Tensor> BatchedExecutor::run_batch(std::span<const Tensor> inputs) {
  std::vector<const Tensor*> ptrs;
  ptrs.reserve(inputs.size());
  for (const Tensor& t : inputs) ptrs.push_back(&t);
  return run_batch(std::span<const Tensor* const>(ptrs.data(), ptrs.size()));
}

Tensor BatchedExecutor::run(const Tensor& input) {
  const Tensor* p = &input;
  return std::move(run_batch(std::span<const Tensor* const>(&p, 1)).front());
}

void BatchedExecutor::dispatch(const ir::Node& node, int n) {
  const auto& shape = node.type.shape;
  const std::size_t per_out = shape.numel();  // per-sample elements: graph batch is 1
  // Every each_sample site gates on the same unit: actual bytes
  // touched per sample (sample_io_bytes), never raw element counts.
  const std::size_t io_bytes = sample_io_bytes(graph_, node);
  const auto in_shape = [&](std::size_t i) -> const Shape& {
    return graph_.node(node.inputs[i]).type.shape;
  };
  // Per-sample operand pointer: constants (weights, quant params) are
  // shared across samples, activations hold capacity_ sample slots.
  const auto f32_s = [&](int id, int s) -> const float* {
    const ir::Node& nd = graph_.node(id);
    const float* p = reinterpret_cast<const float*>(read_buffer(id));
    return nd.is_const() ? p : p + static_cast<std::ptrdiff_t>(s) * nd.type.shape.numel();
  };
  const auto i8_s = [&](int id, int s) -> const std::int8_t* {
    const ir::Node& nd = graph_.node(id);
    const std::int8_t* p = reinterpret_cast<const std::int8_t*>(read_buffer(id));
    return nd.is_const() ? p : p + static_cast<std::ptrdiff_t>(s) * nd.type.shape.numel();
  };

  switch (node.op) {
    case ir::OpKind::kConv2d: {
      const Shape& x = in_shape(0);
      float* out = reinterpret_cast<float*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        const float* bias = node.inputs.size() == 3 ? f32_s(node.inputs[2], s) : nullptr;
        conv2d_f32(f32_s(node.inputs[0], s), f32_s(node.inputs[1], s), bias,
                   out + static_cast<std::ptrdiff_t>(s) * per_out, 1, x[1], x[2], x[3], shape[1],
                   node.conv.kernel, node.conv.stride, node.conv.pad, shape[2], shape[3],
                   node.conv.fused_relu, nullptr);
      });
      return;
    }
    case ir::OpKind::kBatchNorm: {
      const Shape& x = in_shape(0);
      float* out = reinterpret_cast<float*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        batch_norm_f32(f32_s(node.inputs[0], s), f32_s(node.inputs[1], s),
                       f32_s(node.inputs[2], s), f32_s(node.inputs[3], s),
                       f32_s(node.inputs[4], s), out + static_cast<std::ptrdiff_t>(s) * per_out,
                       1, x[1], x[2] * x[3], node.conv.bn_eps);
      });
      return;
    }
    case ir::OpKind::kChannelAffine: {
      const Shape& x = in_shape(0);
      float* out = reinterpret_cast<float*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        channel_affine_f32(f32_s(node.inputs[0], s), f32_s(node.inputs[1], s),
                           f32_s(node.inputs[2], s),
                           out + static_cast<std::ptrdiff_t>(s) * per_out, 1, x[1], x[2] * x[3]);
      });
      return;
    }
    case ir::OpKind::kRelu: {
      float* out = reinterpret_cast<float*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        relu_f32(f32_s(node.inputs[0], s), out + static_cast<std::ptrdiff_t>(s) * per_out,
                 per_out);
      });
      return;
    }
    case ir::OpKind::kAvgPool: {
      const Shape& x = in_shape(0);
      float* out = reinterpret_cast<float*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        avg_pool_f32(f32_s(node.inputs[0], s), out + static_cast<std::ptrdiff_t>(s) * per_out, 1,
                     x[1], x[2], x[3], node.conv.kernel, node.conv.stride, node.conv.pad,
                     shape[2], shape[3]);
      });
      return;
    }
    case ir::OpKind::kAdd: {
      float* out = reinterpret_cast<float*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        add_f32(f32_s(node.inputs[0], s), f32_s(node.inputs[1], s),
                out + static_cast<std::ptrdiff_t>(s) * per_out, per_out);
      });
      return;
    }
    case ir::OpKind::kGlobalAvgPool: {
      const Shape& x = in_shape(0);
      float* out = reinterpret_cast<float*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        global_avg_pool_f32(f32_s(node.inputs[0], s),
                            out + static_cast<std::ptrdiff_t>(s) * per_out, 1, x[1], x[2] * x[3]);
      });
      return;
    }
    case ir::OpKind::kLinear: {
      const Shape& x = in_shape(0);
      float* out = reinterpret_cast<float*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        const float* bias = node.inputs.size() == 3 ? f32_s(node.inputs[2], s) : nullptr;
        linear_f32(f32_s(node.inputs[0], s), f32_s(node.inputs[1], s), bias,
                   out + static_cast<std::ptrdiff_t>(s) * per_out, 1, x[1], shape[1]);
      });
      return;
    }
    case ir::OpKind::kQuantize: {
      std::int8_t* out = reinterpret_cast<std::int8_t*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        quantize_buffer(f32_s(node.inputs[0], s), out + static_cast<std::ptrdiff_t>(s) * per_out,
                        per_out, node.quant.out_q.scale, node.quant.out_q.zero_point);
      });
      return;
    }
    case ir::OpKind::kDequantize: {
      float* out = reinterpret_cast<float*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        dequantize_buffer(i8_s(node.inputs[0], s),
                          out + static_cast<std::ptrdiff_t>(s) * per_out, per_out,
                          node.quant.in_q.scale, node.quant.in_q.zero_point);
      });
      return;
    }
    case ir::OpKind::kQConv2d: {
      const Shape& x = in_shape(0);
      if (const StripStream* strip = plan_.find_strip(node.id)) {
        // Streamed: one shared strip scratch, so samples run serially.
        // The ctor guaranteed |x| == |y| at capacity > 1, so the
        // per-sample overlay bases coincide.
        std::int8_t* yb = reinterpret_cast<std::int8_t*>(buffer(node.id));
        for (int s = 0; s < n; ++s) {
          run_strip_streamed(node, x, strip->strip_h, i8_s(node.inputs[0], s),
                             yb + static_cast<std::ptrdiff_t>(s) * per_out,
                             stream_scratch_.data(), columns_.data(),
                             weight_sums_[static_cast<std::size_t>(node.id)].data(),
                             i8_s(node.inputs[1], 0),
                             reinterpret_cast<const std::int32_t*>(read_buffer(node.inputs[2])),
                             packed_ ? packed_->find(node.id) : nullptr, pool_.get());
        }
        return;
      }
      // The widened-M path: n samples, ONE im2col GEMM invocation with
      // M = n * out_h * out_w, partitioned over output channels.
      QConv2dArgs a;
      a.batch = n;
      a.cin = x[1];
      a.h = x[2];
      a.w = x[3];
      a.cout = shape[1];
      a.kernel = node.conv.kernel;
      a.stride = node.conv.stride;
      a.pad = node.conv.pad;
      a.out_h = shape[2];
      a.out_w = shape[3];
      a.in_zp = node.quant.in_q.zero_point;
      a.out_zp = node.quant.out_q.zero_point;
      a.fused_relu = node.conv.fused_relu;
      a.input = i8_s(node.inputs[0], 0);
      a.weight = i8_s(node.inputs[1], 0);
      a.bias = reinterpret_cast<const std::int32_t*>(read_buffer(node.inputs[2]));
      a.weight_sum = weight_sums_[static_cast<std::size_t>(node.id)].data();
      a.mantissa = node.quant.mantissa.data();
      a.shift = node.quant.shift.data();
      a.columns = columns_.data();
      a.output = reinterpret_cast<std::int8_t*>(buffer(node.id));
      qconv2d_auto(a, packed_ ? packed_->find(node.id) : nullptr, pool_.get());
      return;
    }
    case ir::OpKind::kQAvgPool: {
      const Shape& x = in_shape(0);
      if (const StripStream* strip = plan_.find_strip(node.id)) {
        std::int8_t* yb = reinterpret_cast<std::int8_t*>(buffer(node.id));
        for (int s = 0; s < n; ++s) {
          run_strip_streamed(node, x, strip->strip_h, i8_s(node.inputs[0], s),
                             yb + static_cast<std::ptrdiff_t>(s) * per_out,
                             stream_scratch_.data(), columns_.data(), nullptr, nullptr, nullptr,
                             nullptr, nullptr);
        }
        return;
      }
      std::int8_t* out = reinterpret_cast<std::int8_t*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        qavg_pool(i8_s(node.inputs[0], s), out + static_cast<std::ptrdiff_t>(s) * per_out, 1,
                  x[1], x[2], x[3], node.conv.kernel, node.conv.stride, node.conv.pad, shape[2],
                  shape[3], node.quant.in_q.zero_point, node.quant.mantissa[0],
                  node.quant.shift[0], node.quant.out_q.zero_point);
      });
      return;
    }
    case ir::OpKind::kQAdd: {
      std::int8_t* out = reinterpret_cast<std::int8_t*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        qadd(i8_s(node.inputs[0], s), i8_s(node.inputs[1], s),
             out + static_cast<std::ptrdiff_t>(s) * per_out, per_out,
             node.quant.in_q.zero_point, node.quant.mantissa[0], node.quant.shift[0],
             node.quant.in2_q.zero_point, node.quant.mantissa2, node.quant.shift2,
             node.quant.out_q.zero_point);
      });
      return;
    }
    case ir::OpKind::kQGlobalAvgPool: {
      const Shape& x = in_shape(0);
      std::int8_t* out = reinterpret_cast<std::int8_t*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        qglobal_avg_pool(i8_s(node.inputs[0], s), out + static_cast<std::ptrdiff_t>(s) * per_out,
                         1, x[1], x[2], x[3], node.quant.in_q.zero_point,
                         node.quant.mantissa[0], node.quant.shift[0],
                         node.quant.out_q.zero_point);
      });
      return;
    }
    case ir::OpKind::kQLinear: {
      // qlinear is already an M-widened GEMM: batch rows, one call.
      const Shape& x = in_shape(0);
      QLinearArgs a;
      a.batch = n;
      a.in_features = x[1];
      a.out_features = shape[1];
      a.in_zp = node.quant.in_q.zero_point;
      a.out_zp = node.quant.out_q.zero_point;
      a.input = i8_s(node.inputs[0], 0);
      a.weight = i8_s(node.inputs[1], 0);
      a.bias = reinterpret_cast<const std::int32_t*>(read_buffer(node.inputs[2]));
      a.weight_sum = weight_sums_[static_cast<std::size_t>(node.id)].data();
      a.mantissa = node.quant.mantissa.data();
      a.shift = node.quant.shift.data();
      a.output = reinterpret_cast<std::int8_t*>(buffer(node.id));
      qlinear_auto(a, packed_ ? packed_->find(node.id) : nullptr, pool_.get());
      return;
    }
    case ir::OpKind::kQRelu: {
      std::int8_t* out = reinterpret_cast<std::int8_t*>(buffer(node.id));
      each_sample(n, io_bytes, [&](int s) {
        qrelu(i8_s(node.inputs[0], s), out + static_cast<std::ptrdiff_t>(s) * per_out, per_out,
              node.quant.out_q.zero_point);
      });
      return;
    }
    case ir::OpKind::kInput:
    case ir::OpKind::kConst:
      return;  // handled by the caller
  }
  throw std::logic_error("BatchedExecutor::dispatch: unhandled op kind");
}

}  // namespace micronas::rt
