#include "src/rt/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "src/rt/kernels_f32.hpp"
#include "src/rt/kernels_int8.hpp"

namespace micronas::rt {

Executor::Executor(const ir::Graph& graph, const MemoryPlan& plan, ExecOptions options)
    : graph_(graph), plan_(plan), planned_(true), options_(options) {
  prepare();
}

Executor::Executor(const ir::Graph& graph, ExecOptions options)
    : graph_(graph), planned_(false), options_(options) {
  prepare();
}

void Executor::prepare() {
  graph_.validate();
  const ir::Node& out = graph_.node(graph_.output());
  if (out.type.dtype != ir::DType::kF32) {
    throw std::invalid_argument("Executor: graph must end in a f32 node (add a dequantize)");
  }
  if (graph_.node(graph_.input()).type.dtype != ir::DType::kF32) {
    throw std::invalid_argument("Executor: graph input must be f32 (insert a quantize node)");
  }
  if (options_.threads != 1) pool_ = std::make_unique<ThreadPool>(options_.threads);

  if (planned_) {
    arena_.resize(static_cast<std::size_t>(plan_.arena_bytes));
  } else {
    private_buffers_.resize(static_cast<std::size_t>(graph_.size()));
    for (const auto& node : graph_.nodes()) {
      if (node.is_const()) continue;
      private_buffers_[static_cast<std::size_t>(node.id)].resize(
          static_cast<std::size_t>(node.type.bytes()));
    }
  }

  // Precompute per-channel weight sums and the im2col scratch high-water.
  weight_sums_.resize(static_cast<std::size_t>(graph_.size()));
  std::size_t max_columns = 0;
  for (const auto& node : graph_.nodes()) {
    if (node.op == ir::OpKind::kQConv2d || node.op == ir::OpKind::kQLinear) {
      const ir::Node& w = graph_.node(node.inputs[1]);
      const int cout = w.type.shape[0];
      const auto patch = w.type.shape.numel() / static_cast<std::size_t>(cout);
      std::vector<std::int32_t> sums(static_cast<std::size_t>(cout), 0);
      for (int c = 0; c < cout; ++c) {
        std::int32_t s = 0;
        for (std::size_t k = 0; k < patch; ++k) {
          s += w.i8_data[static_cast<std::size_t>(c) * patch + k];
        }
        sums[static_cast<std::size_t>(c)] = s;
      }
      weight_sums_[static_cast<std::size_t>(node.id)] = std::move(sums);
    }
    if (node.op == ir::OpKind::kQConv2d) {
      const ir::Node& x = graph_.node(node.inputs[0]);
      const std::size_t cols = static_cast<std::size_t>(node.type.shape[2]) *
                               static_cast<std::size_t>(node.type.shape[3]) *
                               static_cast<std::size_t>(x.type.shape[1]) *
                               static_cast<std::size_t>(node.conv.kernel * node.conv.kernel);
      max_columns = std::max(max_columns, cols);
    }
  }
  columns_.resize(max_columns);
}

std::byte* Executor::buffer(int node_id) {
  return const_cast<std::byte*>(read_buffer(node_id));
}

const std::byte* Executor::read_buffer(int node_id) const {
  const ir::Node& node = graph_.node(node_id);
  if (node.is_const()) {
    switch (node.type.dtype) {
      case ir::DType::kF32:
        return reinterpret_cast<const std::byte*>(node.f32_data.data().data());
      case ir::DType::kI8:
        return reinterpret_cast<const std::byte*>(node.i8_data.data());
      case ir::DType::kI32:
        return reinterpret_cast<const std::byte*>(node.i32_data.data());
    }
  }
  if (planned_) {
    const BufferPlacement* b = plan_.find(node_id);
    if (!b) throw std::logic_error("Executor: node has no arena placement");
    return arena_.data() + b->offset;
  }
  return private_buffers_[static_cast<std::size_t>(node_id)].data();
}

const float* Executor::f32_in(int node_id) const {
  return reinterpret_cast<const float*>(read_buffer(node_id));
}

const std::int8_t* Executor::i8_in(int node_id) const {
  return reinterpret_cast<const std::int8_t*>(read_buffer(node_id));
}

Tensor Executor::run(const Tensor& input) {
  const ir::Node& in_node = graph_.node(graph_.input());
  if (!(input.shape() == in_node.type.shape)) {
    throw std::invalid_argument("Executor::run: input shape " + input.shape().to_string() +
                                " != graph input " + in_node.type.shape.to_string());
  }
  std::memcpy(buffer(in_node.id), input.data().data(), input.numel() * sizeof(float));
  if (observer_) observer_(in_node.id, input.data());

  for (const auto& node : graph_.nodes()) {
    if (node.is_const() || node.op == ir::OpKind::kInput) continue;
    dispatch(node);
    if (observer_ && node.type.dtype == ir::DType::kF32) {
      observer_(node.id, std::span<const float>(f32_in(node.id), node.type.shape.numel()));
    }
  }

  const ir::Node& out = graph_.node(graph_.output());
  Tensor result(out.type.shape);
  std::memcpy(result.data().data(), read_buffer(out.id), result.numel() * sizeof(float));
  return result;
}

void Executor::dispatch(const ir::Node& node) {
  const auto& shape = node.type.shape;
  const auto in_shape = [&](std::size_t i) -> const Shape& {
    return graph_.node(node.inputs[i]).type.shape;
  };

  switch (node.op) {
    case ir::OpKind::kConv2d: {
      const Shape& x = in_shape(0);
      const float* bias = node.inputs.size() == 3 ? f32_in(node.inputs[2]) : nullptr;
      conv2d_f32(f32_in(node.inputs[0]), f32_in(node.inputs[1]), bias,
                 reinterpret_cast<float*>(buffer(node.id)), x[0], x[1], x[2], x[3], shape[1],
                 node.conv.kernel, node.conv.stride, node.conv.pad, shape[2], shape[3],
                 node.conv.fused_relu, pool_.get());
      return;
    }
    case ir::OpKind::kBatchNorm: {
      const Shape& x = in_shape(0);
      batch_norm_f32(f32_in(node.inputs[0]), f32_in(node.inputs[1]), f32_in(node.inputs[2]),
                     f32_in(node.inputs[3]), f32_in(node.inputs[4]),
                     reinterpret_cast<float*>(buffer(node.id)), x[0], x[1], x[2] * x[3],
                     node.conv.bn_eps);
      return;
    }
    case ir::OpKind::kChannelAffine: {
      const Shape& x = in_shape(0);
      channel_affine_f32(f32_in(node.inputs[0]), f32_in(node.inputs[1]), f32_in(node.inputs[2]),
                         reinterpret_cast<float*>(buffer(node.id)), x[0], x[1], x[2] * x[3]);
      return;
    }
    case ir::OpKind::kRelu:
      relu_f32(f32_in(node.inputs[0]), reinterpret_cast<float*>(buffer(node.id)),
               shape.numel());
      return;
    case ir::OpKind::kAvgPool: {
      const Shape& x = in_shape(0);
      avg_pool_f32(f32_in(node.inputs[0]), reinterpret_cast<float*>(buffer(node.id)), x[0],
                   x[1], x[2], x[3], node.conv.kernel, node.conv.stride, node.conv.pad, shape[2],
                   shape[3]);
      return;
    }
    case ir::OpKind::kAdd:
      add_f32(f32_in(node.inputs[0]), f32_in(node.inputs[1]),
              reinterpret_cast<float*>(buffer(node.id)), shape.numel());
      return;
    case ir::OpKind::kGlobalAvgPool: {
      const Shape& x = in_shape(0);
      global_avg_pool_f32(f32_in(node.inputs[0]), reinterpret_cast<float*>(buffer(node.id)),
                          x[0], x[1], x[2] * x[3]);
      return;
    }
    case ir::OpKind::kLinear: {
      const Shape& x = in_shape(0);
      const float* bias = node.inputs.size() == 3 ? f32_in(node.inputs[2]) : nullptr;
      linear_f32(f32_in(node.inputs[0]), f32_in(node.inputs[1]), bias,
                 reinterpret_cast<float*>(buffer(node.id)), x[0], x[1], shape[1]);
      return;
    }
    case ir::OpKind::kQuantize:
      quantize_buffer(f32_in(node.inputs[0]),
                      reinterpret_cast<std::int8_t*>(buffer(node.id)), shape.numel(),
                      node.quant.out_q.scale, node.quant.out_q.zero_point);
      return;
    case ir::OpKind::kDequantize:
      dequantize_buffer(i8_in(node.inputs[0]), reinterpret_cast<float*>(buffer(node.id)),
                        shape.numel(), node.quant.in_q.scale, node.quant.in_q.zero_point);
      return;
    case ir::OpKind::kQConv2d: {
      const Shape& x = in_shape(0);
      QConv2dArgs a;
      a.batch = x[0];
      a.cin = x[1];
      a.h = x[2];
      a.w = x[3];
      a.cout = shape[1];
      a.kernel = node.conv.kernel;
      a.stride = node.conv.stride;
      a.pad = node.conv.pad;
      a.out_h = shape[2];
      a.out_w = shape[3];
      a.in_zp = node.quant.in_q.zero_point;
      a.out_zp = node.quant.out_q.zero_point;
      a.fused_relu = node.conv.fused_relu;
      a.input = i8_in(node.inputs[0]);
      a.weight = i8_in(node.inputs[1]);
      a.bias = reinterpret_cast<const std::int32_t*>(read_buffer(node.inputs[2]));
      a.weight_sum = weight_sums_[static_cast<std::size_t>(node.id)].data();
      a.mantissa = node.quant.mantissa.data();
      a.shift = node.quant.shift.data();
      a.columns = columns_.data();
      a.output = reinterpret_cast<std::int8_t*>(buffer(node.id));
      qconv2d(a, pool_.get());
      return;
    }
    case ir::OpKind::kQAvgPool: {
      const Shape& x = in_shape(0);
      qavg_pool(i8_in(node.inputs[0]), reinterpret_cast<std::int8_t*>(buffer(node.id)), x[0],
                x[1], x[2], x[3], node.conv.kernel, node.conv.stride, node.conv.pad, shape[2],
                shape[3], node.quant.in_q.zero_point, node.quant.mantissa[0],
                node.quant.shift[0], node.quant.out_q.zero_point);
      return;
    }
    case ir::OpKind::kQAdd:
      qadd(i8_in(node.inputs[0]), i8_in(node.inputs[1]),
           reinterpret_cast<std::int8_t*>(buffer(node.id)), shape.numel(),
           node.quant.in_q.zero_point, node.quant.mantissa[0], node.quant.shift[0],
           node.quant.in2_q.zero_point, node.quant.mantissa2, node.quant.shift2,
           node.quant.out_q.zero_point);
      return;
    case ir::OpKind::kQGlobalAvgPool: {
      const Shape& x = in_shape(0);
      qglobal_avg_pool(i8_in(node.inputs[0]), reinterpret_cast<std::int8_t*>(buffer(node.id)),
                       x[0], x[1], x[2], x[3], node.quant.in_q.zero_point,
                       node.quant.mantissa[0], node.quant.shift[0],
                       node.quant.out_q.zero_point);
      return;
    }
    case ir::OpKind::kQLinear: {
      const Shape& x = in_shape(0);
      QLinearArgs a;
      a.batch = x[0];
      a.in_features = x[1];
      a.out_features = shape[1];
      a.in_zp = node.quant.in_q.zero_point;
      a.out_zp = node.quant.out_q.zero_point;
      a.input = i8_in(node.inputs[0]);
      a.weight = i8_in(node.inputs[1]);
      a.bias = reinterpret_cast<const std::int32_t*>(read_buffer(node.inputs[2]));
      a.weight_sum = weight_sums_[static_cast<std::size_t>(node.id)].data();
      a.mantissa = node.quant.mantissa.data();
      a.shift = node.quant.shift.data();
      a.output = reinterpret_cast<std::int8_t*>(buffer(node.id));
      qlinear(a);
      return;
    }
    case ir::OpKind::kQRelu:
      qrelu(i8_in(node.inputs[0]), reinterpret_cast<std::int8_t*>(buffer(node.id)),
            shape.numel(), node.quant.out_q.zero_point);
      return;
    case ir::OpKind::kInput:
    case ir::OpKind::kConst:
      return;  // handled by the caller
  }
  throw std::logic_error("Executor::dispatch: unhandled op kind");
}

}  // namespace micronas::rt
