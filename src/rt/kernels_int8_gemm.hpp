// Packed, tiled, vectorizable int8 GEMM kernels — the hardware-fast
// deployment hot path behind a shape-based kernel-selection table.
//
// The scalar kernels in kernels_int8.hpp remain the always-built
// reference semantics; everything here is a *layout/schedule*
// optimization of the same integer arithmetic. Because accumulation is
// exact int32 (no saturation until the final requantization), integer
// addition is associative and commutative, so packing, tiling and loop
// reordering CANNOT change results: every kernel in this file is
// bit-identical to the scalar reference for every shape, batch size
// and thread count (property-tested by
// tests/test_kernels_int8_gemm.cpp under ASan/UBSan and TSan).
//
// Three layers:
//
//   * Packed weight layout (`PackedWeights`, `WeightLayout`): qconv /
//     qlinear weights widened from the canonical int8 [cout][patch]
//     rows into int16 rows padded to kDotLanes along K
//     (kPackedDot16). int16 operands are what x86 turns into the
//     dual-MAC multiply-add idiom (vpmaddwd: 2 MACs per lane per
//     instruction — the same SMLAD trick the paper's Cortex-M7 int8
//     path leans on), roughly doubling MAC throughput over a widen-to-
//     int32 formulation, and the K padding lets the dot loop run to a
//     vector-width multiple with no scalar tail. Packing happens ONCE
//     at package-build time (the compiler's pack-weights step) and the
//     packed image is serialized into the .mnpkg CNST section under a
//     PACK table, so a serving process pays zero repack cost on load;
//     executors repack on the fly for graphs (or legacy packages)
//     without one.
//
//   * GEMM core: im2col into an int16 [column][padded-patch] operand
//     (built by contiguous run copies off a zero-point-padded int16
//     image — no per-element bounds checks), then one exact int32 dot
//     product per (output channel, column) whose reduction loop the
//     autovectorizer turns into vpmaddwd chains. A column's operand
//     (padded-patch int16s) stays L1-hot across the whole channel
//     loop.
//
//   * Kernel-selection table (`select_qconv_kernel`): per-shape choice
//     between the im2col GEMM (spatial convs), a direct convolution
//     that skips im2col entirely (1x1 stride-1 pad-0 — im2col would be
//     a pure transpose copy), and the scalar reference (forced by
//     MICRONAS_PORTABLE builds or when no packed weights exist).
//
// Dispatch entry points (`qconv2d_auto`, `qlinear_auto`) are what
// rt::Executor / rt::BatchedExecutor call; they fall back to the
// scalar kernels whenever the table says so, so a build with
// MICRONAS_PORTABLE=ON (no blocking assumptions, plain loops) behaves
// identically through the same call sites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/const_view.hpp"
#include "src/common/thread_pool.hpp"
#include "src/rt/kernels_int8.hpp"

namespace micronas::ir {
class Graph;
struct Node;
}  // namespace micronas::ir

namespace micronas::rt {

/// On-disk/in-memory weight layout tag. Values are serialized into
/// .mnpkg PACK entries — they are ABI, never renumber them. Unknown
/// tags read from a package are ignored (the loader falls back to
/// repacking), so adding layouts is a forward-compatible extension.
enum class WeightLayout : std::uint8_t {
  kRowMajor = 0,     // canonical int8 [cout][patch] (the IR const layout)
  kPackedDot16 = 1,  // int16 [cout][padded patch] rows, K padded to kDotLanes
};

const char* weight_layout_name(WeightLayout layout);

/// K-dimension padding granularity of kPackedDot16: the int16 lane
/// count of a 512-bit vector, so the dot loop is whole vectors on
/// every ISA level at or below AVX-512 (an AVX2 step just runs two
/// iterations per pad block). Padded weight AND operand tails are
/// zero, so the pad contributes exactly 0 to the int32 sum.
inline constexpr int kDotLanes = 32;

/// One tensor's packed weights: `data` holds cout * padded_patch()
/// int16s (canonical rows widened, K tail zeroed). A ConstView so a
/// mapped package's PACK blobs run in place (zero repack AND zero
/// copy); on-the-fly repacks own their panels as before.
struct PackedWeights {
  WeightLayout layout = WeightLayout::kRowMajor;
  int cout = 0;   // output channels (conv) / out_features (linear)
  int patch = 0;  // K dimension (cin*k*k for conv, in_features for linear)
  ConstView<std::int16_t> data;

  bool empty() const { return data.empty(); }
  /// patch rounded up to the kDotLanes grid (int16s actually stored
  /// per row).
  int padded_patch() const;
};

/// Widen canonical int8 [cout][patch] rows into kPackedDot16.
PackedWeights pack_weights_dot16(const std::int8_t* weight, int cout, int patch);

/// True for the kQConv2d / kQLinear nodes the pack-weights step packs
/// (all of them: even 1x1 convs run the GEMM on small planes). The
/// pack-weights step, the package loader's repack fallback and the
/// tests all share this predicate so the packed set is identical no
/// matter who built it.
bool node_wants_packed_weights(const ir::Graph& graph, const ir::Node& node);

/// Packed weights for every packable node of a graph, indexed by node
/// id (entries for other nodes stay empty). Built once at
/// package-build time by the compiler's pack-weights step, or on the
/// fly by an executor handed a graph without one.
struct PackedWeightSet {
  std::vector<PackedWeights> by_node;

  /// The node's packed weights, or nullptr if absent/unpacked.
  const PackedWeights* find(int node_id) const;
  bool empty() const;
};

/// Pack every node for which node_wants_packed_weights holds (the
/// weight is input 1 of the consuming node; multi-consumer weights are
/// packed per consuming node, keyed by the consumer's id).
PackedWeightSet pack_graph_weights(const ir::Graph& graph);

/// Scratch bytes per sample the im2col-GEMM conv kernel needs inside
/// QConv2dArgs::columns: the zero-point-padded int16 input image plus
/// the int16 [column][padded patch] operand. Executors size their
/// shared scratch to the max of this (times batch) and the scalar
/// kernel's int8 im2col across all conv nodes.
std::size_t qconv_gemm_scratch_bytes(int cin, int h, int w, int kernel, int pad, int out_h,
                                     int out_w);

// --------------------------------------------------- kernel selection

enum class QConvKernel { kScalar, kIm2colGemm, kDirectConv };
enum class QLinearKernel { kScalar, kGemm };

const char* qconv_kernel_name(QConvKernel k);
const char* qlinear_kernel_name(QLinearKernel k);

/// True when this build runs the blocked kernels at all; false under
/// MICRONAS_PORTABLE=ON, where every dispatch resolves to the scalar
/// reference (and executors skip packing entirely). Packing itself is
/// flavor-independent: a portable build still writes PACK sections so
/// packages are byte-identical across build flavors.
bool fast_kernels_enabled();

/// Shape-based selection table:
///   1x1 / stride 1 / pad 0, >= 64 out pixels -> kDirectConv
///   anything else with packed weights        -> kIm2colGemm
///   1x1 / stride 1 / pad 0, no packed        -> kDirectConv
///   no packed weights / portable             -> kScalar
QConvKernel select_qconv_kernel(const QConv2dArgs& args, const PackedWeights* packed);
QLinearKernel select_qlinear_kernel(const QLinearArgs& args, const PackedWeights* packed);

// ----------------------------------------------------------- dispatch

/// Run the kernel the selection table picks; bit-identical to
/// qconv2d(args, pool) in every case. `packed` may be nullptr.
void qconv2d_auto(const QConv2dArgs& args, const PackedWeights* packed, ThreadPool* pool);

/// Run the kernel the selection table picks; bit-identical to
/// qlinear(args, pool) in every case. `packed` may be nullptr.
void qlinear_auto(const QLinearArgs& args, const PackedWeights* packed, ThreadPool* pool);

}  // namespace micronas::rt
