// Perf-regression comparison between two BENCH_*.json reports.
//
// The CI perf job runs `bench_compare bench/baselines/BENCH_tier1.json
// BENCH_tier1.json --threshold 0.25`: a case whose median wall time
// grew by more than the threshold fraction is a regression (non-zero
// exit), one that shrank by more than the threshold is flagged as an
// improvement (baseline refresh suggested), and a baseline case absent
// from the current report fails as missing.
#pragma once

#include <string>
#include <vector>

#include "bench/harness.hpp"

namespace micronas::bench {

enum class Verdict { kOk, kRegression, kImprovement, kMissing, kNew };

const char* verdict_name(Verdict v);

/// One gated counter that moved (or vanished) beyond the counter
/// threshold. Counters are scientific results (arena bytes, reuse
/// factors, speedups) — unlike wall time they are near-deterministic,
/// so the memory CI lane gates them far tighter than medians.
struct CounterDrift {
  std::string name;
  double baseline = 0.0;
  double current = 0.0;
  /// |current - baseline| / max(|baseline|, 1e-12); infinity-free.
  double rel = 0.0;
  bool missing = false;  // counter present in baseline, absent now
};

struct CaseComparison {
  std::string full_name;
  Verdict verdict = Verdict::kOk;
  double baseline_median_ms = 0.0;
  double current_median_ms = 0.0;
  /// current/baseline median; 0 when either side is absent.
  double ratio = 0.0;
  /// Gated counters that drifted beyond counter_threshold (empty when
  /// counter gating is off or everything held).
  std::vector<CounterDrift> counter_drifts;
};

struct CompareOptions {
  /// Allowed fractional median growth (0.25 == +25 %).
  double threshold = 0.25;
  /// Allowed relative drift for per-case counters; <= 0 disables
  /// counter gating. Counters present in the baseline but absent from
  /// the current report count as drift (lost coverage).
  double counter_threshold = 0.0;
  /// When true, baseline cases missing from the current report are
  /// reported but do not fail the comparison.
  bool allow_missing = false;
};

struct CompareResult {
  std::vector<CaseComparison> cases;  // baseline order, then new cases
  int regressions = 0;
  int improvements = 0;
  int missing = 0;
  int added = 0;
  int counter_regressions = 0;  // cases with at least one counter drift

  bool failed(const CompareOptions& opts) const {
    return regressions > 0 || counter_regressions > 0 || (!opts.allow_missing && missing > 0);
  }
};

/// Diff `current` against `baseline` case-by-case on median wall time.
CompareResult compare_reports(const Report& baseline, const Report& current,
                              const CompareOptions& opts);

/// Human-readable verdict table (stdout of the bench_compare CLI).
std::string render_comparison(const CompareResult& result, const CompareOptions& opts);

}  // namespace micronas::bench
