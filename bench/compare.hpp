// Perf-regression comparison between two BENCH_*.json reports.
//
// The CI perf job runs `bench_compare bench/baselines/BENCH_tier1.json
// BENCH_tier1.json --threshold 0.25`: a case whose median wall time
// grew by more than the threshold fraction is a regression (non-zero
// exit), one that shrank by more than the threshold is flagged as an
// improvement (baseline refresh suggested), and a baseline case absent
// from the current report fails as missing.
#pragma once

#include <string>
#include <vector>

#include "bench/harness.hpp"

namespace micronas::bench {

enum class Verdict { kOk, kRegression, kImprovement, kMissing, kNew };

const char* verdict_name(Verdict v);

struct CaseComparison {
  std::string full_name;
  Verdict verdict = Verdict::kOk;
  double baseline_median_ms = 0.0;
  double current_median_ms = 0.0;
  /// current/baseline median; 0 when either side is absent.
  double ratio = 0.0;
};

struct CompareOptions {
  /// Allowed fractional median growth (0.25 == +25 %).
  double threshold = 0.25;
  /// When true, baseline cases missing from the current report are
  /// reported but do not fail the comparison.
  bool allow_missing = false;
};

struct CompareResult {
  std::vector<CaseComparison> cases;  // baseline order, then new cases
  int regressions = 0;
  int improvements = 0;
  int missing = 0;
  int added = 0;

  bool failed(const CompareOptions& opts) const {
    return regressions > 0 || (!opts.allow_missing && missing > 0);
  }
};

/// Diff `current` against `baseline` case-by-case on median wall time.
CompareResult compare_reports(const Report& baseline, const Report& current,
                              const CompareOptions& opts);

/// Human-readable verdict table (stdout of the bench_compare CLI).
std::string render_comparison(const CompareResult& result, const CompareOptions& opts);

}  // namespace micronas::bench
