// bench_runner — the single CLI over every registered bench suite.
//
//   bench_runner --list                      # enumerate cases (suite.case)
//   bench_runner                             # run everything, write BENCH_all.json
//   bench_runner --tier 1 --out BENCH_tier1.json
//   bench_runner --filter micro_kernels      # substring on suite.case
//   bench_runner --set samples=8,sweep=200   # per-case param overrides
//   bench_runner --reps 10 --warmup 3 --rsd 0.02   # repetition policy
//   bench_runner --best-of 2                 # keep each case's fastest pass
//   bench_runner --merge a.json,b.json --out merged.json  # no run; merge docs
//
// Progress lines go to stderr; the JSON telemetry document is the only
// artifact (plus optional verbose case tables on stdout).
#include <iostream>

#include "bench/harness.hpp"
#include "src/common/cli.hpp"

using namespace micronas;
using namespace micronas::bench;

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"list", "filter", "tier", "out", "set", "verbose", "warmup", "reps",
                        "max-reps", "rsd", "best-of", "merge"});

    // --merge a.json,b.json: combine existing documents, latest-wins
    // per duplicated suite.case key; no cases are run.
    const std::vector<std::string> merge_inputs = args.get_list("merge", "");
    if (!merge_inputs.empty()) {
      Report merged = Report::from_json(load_json_file(merge_inputs.front()));
      for (std::size_t i = 1; i < merge_inputs.size(); ++i) {
        merged.merge(Report::from_json(load_json_file(merge_inputs[i])));
      }
      const std::string out = args.get_string("out", "BENCH_all.json");
      save_json_file(merged.to_json(), out);
      std::cerr << "[bench] merged " << merge_inputs.size() << " document(s), "
                << merged.cases.size() << " case(s) -> " << out << "\n";
      return 0;
    }

    RunnerOptions options;
    options.filter = args.get_string("filter", "");
    options.tier = args.get_int("tier", 0);
    options.verbose = args.get_bool("verbose", false);
    options.warmup = args.get_int("warmup", options.warmup);
    options.min_reps = args.get_int("reps", options.min_reps);
    options.max_reps = args.get_int("max-reps", options.max_reps);
    options.steady_rsd = args.get_double("rsd", options.steady_rsd);
    // CliArgs keeps only the last occurrence of a repeated flag, so
    // overrides arrive as one comma list: --set a=1,b=2. An item
    // without '=' continues the previous value, so comma-valued params
    // survive: --set mcus=m4,m7,pop=32 -> {mcus: "m4,m7", pop: "32"}.
    std::string last_key;
    for (const std::string& item : args.get_list("set", "")) {
      const std::size_t eq = item.find('=');
      if (eq == std::string::npos) {
        if (last_key.empty()) {
          throw std::invalid_argument("--set expects name=value, got '" + item + "'");
        }
        options.overrides[last_key] += "," + item;
        continue;
      }
      last_key = item.substr(0, eq);
      options.overrides[last_key] = item.substr(eq + 1);
    }

    const Runner runner(options);

    if (args.get_bool("list", false)) {
      for (const CaseInfo& info : runner.selection()) {
        std::cout << info.full_name() << " (tier " << info.options.tier << ")\n";
      }
      return 0;
    }

    const auto selected = runner.selection();
    if (selected.empty()) {
      std::cerr << "[bench] no cases match filter '" << options.filter << "' tier "
                << options.tier << "\n";
      return 2;
    }
    std::cerr << "[bench] running " << selected.size() << " case(s)\n";
    Report report = runner.run(&std::cerr);

    // --best-of N: re-run the whole selection and keep each case's
    // fastest pass. A transient contention spike must hit the same
    // case in every pass to survive into the telemetry, which is what
    // keeps the CI perf gate from flaking on shared runners.
    const int best_of = args.get_int("best-of", 1);
    for (int pass = 1; pass < best_of; ++pass) {
      std::cerr << "[bench] best-of pass " << pass + 1 << "/" << best_of << "\n";
      const Report again = runner.run(&std::cerr);
      for (CaseResult& kept : report.cases) {
        for (const CaseResult& candidate : again.cases) {
          if (candidate.full_name() == kept.full_name() &&
              candidate.wall_ms.median > 0.0 &&
              (kept.wall_ms.median <= 0.0 ||
               candidate.wall_ms.median < kept.wall_ms.median)) {
            kept = candidate;
          }
        }
      }
    }

    const std::string out = args.get_string("out", "BENCH_all.json");
    save_json_file(report.to_json(), out);
    std::cerr << "[bench] wrote " << report.cases.size() << " case(s) -> " << out << " (sha "
              << report.build.git_sha << ", " << report.build.compiler << ")\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
