// Eval-engine bench: throughput scaling of parallel proxy scoring and
// the memoized indicator cache on NB201 sweeps.
//
//   ./bench_eval_engine                       # default: 64-cell scaling + 1000-cell sweep
//   ./bench_eval_engine --samples 128 --sweep 15625   # full exhaustive sweep
//   ./bench_eval_engine --max-threads 8
//
// Sections:
//  1. Scaling — the same candidate batch scored serially and on 2/4/8
//     workers (cache off), verifying results are bit-identical to the
//     serial run at every thread count. Speedups track the machine's
//     core count; on a single-core host they flatten at ~1x.
//  2. Cache — an index-ordered exhaustive sweep scored with the
//     canonical-key cache on: the hit rate equals the space's
//     functional redundancy (~39.6 % over all 15 625 cells), and a
//     second (warm) pass is answered entirely from the cache.
#include <chrono>
#include <iostream>

#include "bench/bench_common.hpp"
#include "src/common/cli.hpp"
#include "src/nb201/canonical.hpp"
#include "src/search/eval_engine.hpp"

using namespace micronas;

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

bool bitwise_equal(const IndicatorValues& a, const IndicatorValues& b) {
  return a.ntk_condition == b.ntk_condition && a.linear_regions == b.linear_regions &&
         a.flops_m == b.flops_m && a.params_m == b.params_m && a.latency_ms == b.latency_ms &&
         a.peak_sram_kb == b.peak_sram_kb;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv, {"samples", "sweep", "max-threads", "seed"});
    const int samples = args.get_int("samples", 64);
    const int sweep = args.get_int("sweep", 1000);
    const int max_threads = args.get_int("max-threads", 8);
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

    bench::Apparatus app(seed, /*batch=*/6, /*input_size=*/8, /*channels=*/4);

    // ---------------------------------------------------- 1. scaling
    bench::print_header("Parallel scoring throughput (cache off, bit-identity verified)");
    Rng rng(seed);
    const std::vector<nb201::Genotype> batch = nb201::sample_genotypes(rng, samples);

    EvalEngineConfig serial_cfg;
    serial_cfg.threads = 1;
    serial_cfg.cache = false;
    serial_cfg.seed = seed;
    const ProxyEvalEngine serial(*app.suite, serial_cfg);

    auto t0 = std::chrono::steady_clock::now();
    const auto reference = serial.evaluate_batch(batch);
    const double serial_s = seconds_since(t0);

    TablePrinter scaling({"Threads", "Wall (s)", "Evals/s", "Speedup", "Bit-identical"});
    scaling.add_row({"1", TablePrinter::fmt(serial_s, 2), TablePrinter::fmt(samples / serial_s, 1),
                     "1.00", "reference"});
    for (int threads = 2; threads <= max_threads; threads *= 2) {
      EvalEngineConfig cfg = serial_cfg;
      cfg.threads = threads;
      const ProxyEvalEngine engine(*app.suite, cfg);
      t0 = std::chrono::steady_clock::now();
      const auto values = engine.evaluate_batch(batch);
      const double wall = seconds_since(t0);
      bool identical = values.size() == reference.size();
      for (std::size_t i = 0; identical && i < values.size(); ++i) {
        identical = bitwise_equal(values[i], reference[i]);
      }
      scaling.add_row({TablePrinter::fmt_int(threads), TablePrinter::fmt(wall, 2),
                       TablePrinter::fmt(samples / wall, 1),
                       TablePrinter::fmt(serial_s / wall, 2), identical ? "yes" : "NO"});
    }
    std::cout << scaling.render();
    std::cout << "\n(Speedup tracks the host's core count: "
              << std::thread::hardware_concurrency() << " hardware thread(s) here.)\n";

    // ---------------------------------------------------- 2. cache
    bench::print_header("Memoized indicator cache on an exhaustive NB201 sweep");
    const nb201::SpaceRedundancy census = nb201::analyze_space_redundancy();
    std::cout << "Space census: " << census.canonical_classes << " behaviour classes in "
              << census.total << " genotypes ("
              << TablePrinter::fmt(100.0 * census.redundancy_fraction(), 1)
              << " % functionally redundant)\n\n";

    std::vector<nb201::Genotype> sweep_batch;
    sweep_batch.reserve(static_cast<std::size_t>(sweep));
    for (int i = 0; i < sweep && i < nb201::kNumArchitectures; ++i) {
      sweep_batch.push_back(nb201::Genotype::from_index(i));
    }

    EvalEngineConfig cached_cfg;
    cached_cfg.threads = max_threads;
    cached_cfg.cache = true;
    cached_cfg.seed = seed;
    const ProxyEvalEngine cached(*app.suite, cached_cfg);

    t0 = std::chrono::steady_clock::now();
    const auto cold_values = cached.evaluate_batch(sweep_batch);
    const double cold_s = seconds_since(t0);
    const EvalEngineStats cold = cached.stats();

    t0 = std::chrono::steady_clock::now();
    const auto warm_values = cached.evaluate_batch(sweep_batch);
    const double warm_s = seconds_since(t0);
    const EvalEngineStats warm = cached.stats();

    bool replay_identical = true;
    for (std::size_t i = 0; replay_identical && i < warm_values.size(); ++i) {
      replay_identical = bitwise_equal(cold_values[i], warm_values[i]);
    }

    TablePrinter cache({"Pass", "Requests", "Proxy evals", "Hit rate", "Wall (s)", "Evals/s"});
    cache.add_row({"cold", TablePrinter::fmt_int(cold.requests),
                   TablePrinter::fmt_int(cold.evaluations),
                   TablePrinter::fmt(100.0 * cold.hit_rate(), 1) + " %",
                   TablePrinter::fmt(cold_s, 2),
                   TablePrinter::fmt(sweep_batch.size() / cold_s, 1)});
    const long long warm_requests = warm.requests - cold.requests;
    const double warm_hit_rate =
        warm_requests > 0 ? static_cast<double>(warm.cache_hits - cold.cache_hits) /
                                static_cast<double>(warm_requests)
                          : 0.0;
    cache.add_row({"warm", TablePrinter::fmt_int(warm_requests),
                   TablePrinter::fmt_int(warm.evaluations - cold.evaluations),
                   TablePrinter::fmt(100.0 * warm_hit_rate, 1) + " %",
                   TablePrinter::fmt(warm_s, 2),
                   TablePrinter::fmt(sweep_batch.size() / warm_s, 1)});
    std::cout << cache.render();
    std::cout << "\nWarm replay bit-identical to cold sweep: " << (replay_identical ? "yes" : "NO")
              << "\nCold-sweep work saved by canonical-key memoization: "
              << TablePrinter::fmt(100.0 * cold.hit_rate(), 1) << " % of "
              << cold.requests << " requests\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
