// §II.B.2 latency-model validation: "Our latency model was validated as
// accurate, reliable, and simple."
//
// The LUT estimator (profiled per-op, summed, plus constant overhead)
// is validated against end-to-end MCU-simulator measurements over a
// random architecture sample: MAPE, rank correlation, and worst-case
// error. The estimator deliberately misses the simulator's cross-layer
// SRAM-pressure term — the residual error quantifies that model gap,
// playing the role of the board-vs-model gap in the paper.
#include "bench/suites/common.hpp"
#include "src/stats/correlation.hpp"
#include "src/stats/summary.hpp"

namespace micronas {
namespace {

// Tier 1 with a few repetitions: one cold single-sample median would
// flake the CI perf gate on noisy shared runners.
BENCH_CASE_OPTS(latency_validation, lut_estimator_vs_simulator,
                bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 5, .tier = 1}) {
  const int sample_count = state.param_int("archs", 150);

  bench::Apparatus app(/*seed=*/42, /*batch=*/8);
  const MacroNetConfig deploy;

  Rng arch_rng(5);
  Rng jitter_rng(6);
  const auto sample = nb201::sample_genotypes(arch_rng, sample_count);

  // The SRAM-pressure census is deterministic — one pass outside the
  // timed loop, so repetitions measure only estimate + simulate.
  int pressured = 0;
  for (const auto& g : sample) {
    if (simulate_network(build_macro_model(g, deploy), app.mcu).sram_pressure) ++pressured;
  }

  std::vector<double> predicted, measured, rel_err;
  for (auto _ : state) {
    predicted.clear();
    measured.clear();
    rel_err.clear();
    for (const auto& g : sample) {
      const MacroModel m = build_macro_model(g, deploy);
      const double est = app.estimator->estimate_ms(m);
      const double sim = measure_latency_ms(m, app.mcu, jitter_rng);
      predicted.push_back(est);
      measured.push_back(sim);
      rel_err.push_back(std::abs(est - sim) / sim);
    }
  }
  state.set_items_processed(static_cast<double>(sample.size()));

  const auto err = stats::summarize(rel_err);
  const double mape = stats::mape(predicted, measured);
  const double rho = stats::spearman_rho(predicted, measured);
  const double tau = stats::kendall_tau(predicted, measured);
  state.counter("mape", mape);
  state.counter("median_rel_error", err.median);
  state.counter("max_rel_error", err.max);
  state.counter("spearman_rho", rho);
  state.counter("kendall_tau", tau);
  state.counter("sram_pressured_nets", pressured);

  if (state.verbose()) {
    bench::print_header("Latency estimator validation vs MCU simulator");
    TablePrinter table({"Metric", "Value"});
    table.add_row({"Architectures", TablePrinter::fmt_int(sample_count)});
    table.add_row({"MAPE", TablePrinter::fmt(mape * 100.0, 2) + " %"});
    table.add_row({"Median rel. error", TablePrinter::fmt(err.median * 100.0, 2) + " %"});
    table.add_row({"Max rel. error", TablePrinter::fmt(err.max * 100.0, 2) + " %"});
    table.add_row({"Spearman rho", TablePrinter::fmt(rho, 4)});
    table.add_row({"Kendall tau", TablePrinter::fmt(tau, 4)});
    table.add_row({"SRAM-pressured nets", TablePrinter::fmt_int(pressured)});
    table.add_row({"LUT entries", TablePrinter::fmt_int(static_cast<long long>(
                                      app.estimator->table().size()))});
    table.add_row(
        {"Constant overhead", TablePrinter::fmt(app.estimator->constant_overhead_ms(), 3) + " ms"});
    std::cout << table.render();

    // A few example rows, paper-style.
    TablePrinter ex({"Architecture (index)", "Estimated(ms)", "Measured(ms)", "Error"});
    for (std::size_t i = 0; i < 5 && i < sample.size(); ++i) {
      ex.add_row({TablePrinter::fmt_int(sample[i].index()), TablePrinter::fmt(predicted[i], 1),
                  TablePrinter::fmt(measured[i], 1),
                  TablePrinter::fmt(rel_err[i] * 100.0, 2) + " %"});
    }
    std::cout << "\n" << ex.render();
    std::cout << "\nPaper reference: the LUT-based estimator tracks board latency closely enough "
                 "to drive the search (validated as accurate and reliable).\n";
  }
}

}  // namespace
}  // namespace micronas
