// §III search-efficiency reproduction: "approximately 1104× efficiency
// in search time (reported in GPU hours) and 6.2 % better performance"
// versus µNAS.
//
// Search cost is accounted in modeled GPU-hours (cost constants
// calibrated to the paper's reported numbers — see CostModel), plus
// measured wall seconds of our CPU implementation for transparency.
#include <chrono>

#include "bench/suites/common.hpp"
#include "src/search/evolution_search.hpp"
#include "src/search/random_search.hpp"

namespace micronas {
namespace {

BENCH_CASE_OPTS(search_efficiency, gpu_hour_accounting_vs_unas, bench::experiment_opts()) {
  bench::Apparatus app(/*seed=*/42, /*batch=*/16);
  const CostModel cost;
  const MacroNetConfig deploy;

  struct Row {
    std::string name;
    long long evals;
    double gpu_hours;
    double wall_seconds;
    double accuracy;
  };
  std::vector<Row> rows;

  for (auto _ : state) {
    rows.clear();

    // µNAS-method: 1000 trained evaluations.
    {
      EvolutionSearchConfig cfg;
      cfg.population_size = 50;
      cfg.tournament_size = 10;
      cfg.total_evals = 1000;
      cfg.constraints.max_params_m = 0.11;
      Rng rng(1);
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = evolution_search(app.oracle, cfg, deploy, app.estimator.get(), rng);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      rows.push_back({"uNAS-method (trained evolution)", res.trained_evals,
                      cost.trained_search_gpu_hours(res.trained_evals), wall, res.accuracy});
    }

    // Random proxy search with a 60-candidate budget (ablation point).
    {
      RandomSearchConfig cfg;
      cfg.num_samples = 60;
      cfg.weights = IndicatorWeights::latency_guided(1.0);
      Rng rng(2);
      const auto res = random_search(*app.suite, cfg, rng);
      rows.push_back({"Random proxy search (60 cells)", res.proxy_evals,
                      cost.proxy_search_gpu_hours(res.proxy_evals), res.wall_seconds,
                      app.oracle.mean_accuracy(res.genotype, nb201::Dataset::kCifar10)});
    }

    // MicroNAS pruning search: 84 proxy evaluations.
    {
      PruningSearchConfig cfg;
      cfg.proxy_repeats = 2;
      cfg.weights = IndicatorWeights::latency_guided(2.0);
      Rng rng(3);
      const auto res = pruning_search(*app.suite, *app.hw_model, cfg, rng);
      rows.push_back({"MicroNAS (pruning, 84 evals)", res.proxy_evals,
                      cost.proxy_search_gpu_hours(res.proxy_evals), res.wall_seconds,
                      app.oracle.mean_accuracy(res.genotype, nb201::Dataset::kCifar10)});
    }
  }
  state.set_items_processed(1.0);

  const double unas_hours = rows[0].gpu_hours;
  const double ratio = search_efficiency_ratio(unas_hours, rows[2].gpu_hours);
  const double acc_gain = rows[2].accuracy - rows[0].accuracy;
  state.counter("efficiency_vs_unas", ratio);
  state.counter("acc_gain_pts", acc_gain);
  state.counter("micronas_gpu_hours", rows[2].gpu_hours);
  state.counter("unas_gpu_hours", unas_hours);

  if (state.verbose()) {
    bench::print_header("Search efficiency — GPU-hour accounting vs uNAS baseline");
    TablePrinter table({"Search", "Evals", "GPU-h (modeled)", "Wall(s)", "ACC(%)",
                        "Efficiency vs uNAS"});
    for (const auto& r : rows) {
      table.add_row({r.name, TablePrinter::fmt_int(r.evals), TablePrinter::fmt(r.gpu_hours, 3),
                     TablePrinter::fmt(r.wall_seconds, 1), TablePrinter::fmt(r.accuracy, 2),
                     TablePrinter::fmt(search_efficiency_ratio(unas_hours, r.gpu_hours), 0) + "x"});
    }
    std::cout << table.render();
    std::cout << "\nMicroNAS vs uNAS-method: " << TablePrinter::fmt(ratio, 0)
              << "x search efficiency, " << TablePrinter::fmt(acc_gain, 1)
              << " accuracy points better.\n";
    std::cout << "Paper reference: ~1104x efficiency (552 vs ~0.5 GPU-h), +6.2 % accuracy.\n";
  }
}

}  // namespace
}  // namespace micronas
