// Fig. 2a reproduction: Kendall-τ of the generalized NTK condition
// index K_i = λ1/λi against trained accuracy, swept over the
// eigenvalue index i = 1..16, on CIFAR-10 / CIFAR-100 / ImageNet16-120.
//
// The paper's figure shows τ rising from 0 at i=1 (K_1 ≡ 1 carries no
// signal) to a plateau once i reaches the bulk of the spectrum; the
// full condition number (i = batch) is a good default. We sample a
// fixed architecture pool, compute each cell's NTK spectrum once per
// dataset, and correlate each K_i column with surrogate accuracy.
#include "bench/suites/common.hpp"
#include "src/nb201/features.hpp"
#include "src/stats/correlation.hpp"

namespace micronas {
namespace {

constexpr int kBatch = 16;

// Tier 1 with a few repetitions: one cold single-sample median would
// flake the CI perf gate on noisy shared runners.
BENCH_CASE_OPTS(fig2a, kendall_tau_vs_condition_index,
                bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 5, .tier = 1}) {
  const int archs = state.param_int("archs", 48);

  const std::array<nb201::Dataset, 3> datasets = {
      nb201::Dataset::kCifar10, nb201::Dataset::kCifar100, nb201::Dataset::kImageNet16};
  const nb201::SurrogateOracle oracle;

  // One shared architecture pool over the *full* space (including
  // untrainable cells — most of the trainability signal κ carries is
  // precisely the separation of degenerate cells; K_1 ≡ 1 ties every
  // cell and anchors the curve at τ = 0).
  Rng pool_rng(2024);
  const std::vector<nb201::Genotype> pool = nb201::sample_genotypes(pool_rng, archs);

  TablePrinter table({"K_i", "tau(CIFAR-10)", "tau(CIFAR-100)", "tau(ImageNet16-120)"});
  std::array<std::vector<double>, 3> taus;

  for (auto _ : state) {
    // Repetition-safe: rebuild the per-iteration accumulators.
    table = TablePrinter({"K_i", "tau(CIFAR-10)", "tau(CIFAR-100)", "tau(ImageNet16-120)"});
    for (auto& t : taus) t.clear();

    // Spectra per dataset (probe batches differ in distribution seed).
    std::array<std::vector<NtkResult>, 3> spectra;  // [dataset][arch] -> spectrum
    std::array<std::vector<double>, 3> accs;
    for (std::size_t d = 0; d < datasets.size(); ++d) {
      CellNetConfig proxy;
      proxy.input_size = 8;
      proxy.base_channels = 4;
      proxy.num_classes = dataset_spec(datasets[d]).num_classes;

      Rng data_rng(100 + d);
      SyntheticDataset ds(dataset_spec(datasets[d]), data_rng);
      const Batch batch = ds.sample_batch_resized(kBatch, proxy.input_size, data_rng);

      Rng net_rng(200 + d);
      for (const auto& g : pool) {
        spectra[d].push_back(ntk_condition(g, proxy, batch.images, net_rng));
        accs[d].push_back(oracle.mean_accuracy(g, datasets[d]));
      }
    }

    for (int i = 1; i <= kBatch; ++i) {
      std::array<double, 3> row_tau{};
      for (std::size_t d = 0; d < datasets.size(); ++d) {
        std::vector<double> ki;
        ki.reserve(pool.size());
        for (const auto& res : spectra[d]) ki.push_back(ntk_condition_index(res, i));
        // Negative correlation expected (large κ = poor trainability);
        // report |τ| direction explicitly as the paper plots the
        // magnitude of the (anti-)correlation.
        row_tau[d] = -stats::kendall_tau(ki, accs[d]);
        taus[d].push_back(row_tau[d]);
      }
      table.add_row({"K_" + std::to_string(i), TablePrinter::fmt(row_tau[0], 3),
                     TablePrinter::fmt(row_tau[1], 3), TablePrinter::fmt(row_tau[2], 3)});
    }
  }
  state.set_items_processed(3.0 * archs);

  // Shape check: the plateau (mean of i >= 8) must dominate K_2.
  std::string plateau_lines;
  for (std::size_t d = 0; d < datasets.size(); ++d) {
    double plateau = 0.0;
    for (int i = 8; i <= kBatch; ++i) plateau += taus[d][static_cast<std::size_t>(i - 1)];
    plateau /= (kBatch - 7);
    state.counter("plateau_tau_" + std::string(dataset_name(datasets[d])), plateau);
    state.counter("tau_k2_" + std::string(dataset_name(datasets[d])), taus[d][1]);
    plateau_lines += std::string(dataset_name(datasets[d])) + ": plateau mean tau (i>=8) = " +
                     TablePrinter::fmt(plateau, 3) + " vs tau(K_2) = " +
                     TablePrinter::fmt(taus[d][1], 3) + "\n";
  }

  if (state.verbose()) {
    bench::print_header("Fig. 2a — Kendall-tau vs condition index K_i");
    std::cout << table.render() << plateau_lines
              << "\nPaper Fig. 2a reference: tau rises with i and plateaus around 0.3-0.6; "
                 "the three datasets track each other with CIFAR-10 highest.\n";
  }
}

}  // namespace
}  // namespace micronas
