// Fig. 2b reproduction: Kendall-τ of the NTK condition number against
// trained accuracy as a function of the probe batch size (log scale),
// three independent trials plus their average.
//
// The paper's finding — and the reason MicroNAS fixes batch = 32: τ
// climbs up to batch ≈ 16-32 and then flattens, while the NTK cost
// grows linearly (quadratically in per-logit mode) with batch, so
// pushing past 32 buys nothing. The micro_kernels suite quantifies the
// cost side of that trade-off.
#include "bench/suites/common.hpp"
#include "src/stats/correlation.hpp"

namespace micronas {
namespace {

const std::array<int, 6> kBatchSizes = {5, 10, 16, 32, 64, 100};
constexpr int kTrials = 3;

BENCH_CASE_OPTS(fig2b, kendall_tau_vs_batch_size, bench::experiment_opts()) {
  const int archs = state.param_int("archs", 64);

  const nb201::SurrogateOracle oracle;
  Rng pool_rng(777);
  const auto pool = nb201::sample_genotypes(pool_rng, archs);

  CellNetConfig proxy;
  proxy.input_size = 8;
  proxy.base_channels = 4;
  proxy.num_classes = 10;

  std::vector<double> accs;
  accs.reserve(pool.size());
  for (const auto& g : pool) accs.push_back(oracle.mean_accuracy(g, nb201::Dataset::kCifar10));

  TablePrinter table({"Batch", "tau trial 1", "tau trial 2", "tau trial 3", "avg tau"});
  std::vector<double> avg_by_batch;

  for (auto _ : state) {
    for (int batch : kBatchSizes) {
      std::array<double, kTrials> taus{};
      for (int trial = 0; trial < kTrials; ++trial) {
        Rng data_rng(1000 + static_cast<std::uint64_t>(batch) * 17 + trial);
        SyntheticDataset ds(dataset_spec(nb201::Dataset::kCifar10), data_rng);
        const Batch probe = ds.sample_batch_resized(batch, proxy.input_size, data_rng);

        Rng net_rng(2000 + static_cast<std::uint64_t>(trial));
        std::vector<double> kappa;
        kappa.reserve(pool.size());
        for (const auto& g : pool) {
          kappa.push_back(ntk_condition(g, proxy, probe.images, net_rng).condition_number);
        }
        taus[static_cast<std::size_t>(trial)] = -stats::kendall_tau(kappa, accs);
      }
      const double avg = (taus[0] + taus[1] + taus[2]) / 3.0;
      avg_by_batch.push_back(avg);
      state.counter("avg_tau_batch_" + std::to_string(batch), avg);
      table.add_row({std::to_string(batch), TablePrinter::fmt(taus[0], 3),
                     TablePrinter::fmt(taus[1], 3), TablePrinter::fmt(taus[2], 3),
                     TablePrinter::fmt(avg, 3)});
    }
  }
  state.set_items_processed(static_cast<double>(kBatchSizes.size()) * kTrials * archs);

  // Shape summary: gain from 5->32 vs gain from 32->100.
  const double gain_small = avg_by_batch[3] - avg_by_batch[0];
  const double gain_large = avg_by_batch[5] - avg_by_batch[3];
  state.counter("tau_gain_batch_5_to_32", gain_small);
  state.counter("tau_gain_batch_32_to_100", gain_large);

  if (state.verbose()) {
    bench::print_header("Fig. 2b — Kendall-tau vs batch size (3 trials + avg)");
    std::cout << table.render();
    std::cout << "tau gain batch 5->32: " << TablePrinter::fmt(gain_small, 3)
              << "; batch 32->100: " << TablePrinter::fmt(gain_large, 3) << "\n";
    std::cout << "\nPaper Fig. 2b reference: tau plateaus in the 16-32 batch range; "
                 "beyond 32 the correlation barely moves while cost escalates.\n";
  }
}

}  // namespace
}  // namespace micronas
