// Ablation of the hybrid objective (design-choice study from
// DESIGN.md): which indicator combinations matter?
//
//   NTK only / LR only / NTK+LR (TE-NAS) / +FLOPs / +latency (MicroNAS)
//
// For each variant the pruning search runs with identical seeds and
// probe data; we report the discovered cell's surrogate accuracy,
// measured MCU latency and hardware cost. The paper's claims decompose
// here: NTK+LR secures accuracy, the hardware term buys the speedup.
#include "bench/suites/common.hpp"

namespace micronas {
namespace {

BENCH_CASE_OPTS(ablation, hybrid_objective_components, bench::experiment_opts()) {
  bench::Apparatus app(/*seed=*/42, /*batch=*/state.param_int("batch", 16));
  const MacroNetConfig deploy;
  Rng measure_rng(11);

  struct Variant {
    std::string name;    // human-readable table row
    std::string key;     // counter-friendly slug
    IndicatorWeights weights;
  };
  const std::vector<Variant> variants = {
      {"NTK only", "ntk", {1.0, 0.0, 0.0, 0.0}},
      {"LR only", "lr", {0.0, 1.0, 0.0, 0.0}},
      {"NTK+LR (TE-NAS)", "te_nas", IndicatorWeights::te_nas()},
      {"NTK+LR+FLOPs", "flops", IndicatorWeights::flops_guided(2.0)},
      {"NTK+LR+latency (MicroNAS)", "latency", IndicatorWeights::latency_guided(2.0)},
      {"latency only (degenerate)", "latency_only", {0.0, 0.0, 0.0, 1.0}},
  };

  TablePrinter table({"Objective", "ACC(%)", "Latency(ms)", "FLOPs(M)", "Params(M)"});
  for (auto _ : state) {
    for (const auto& v : variants) {
      PruningSearchConfig cfg;
      cfg.proxy_repeats = 2;
      cfg.weights = v.weights;
      Rng rng(23);
      const auto res = pruning_search(*app.suite, *app.hw_model, cfg, rng);
      const double ms =
          measure_latency_ms(build_macro_model(res.genotype, deploy), app.mcu, measure_rng);
      const double acc = app.oracle.mean_accuracy(res.genotype, nb201::Dataset::kCifar10);
      table.add_row({v.name, TablePrinter::fmt(acc, 2), TablePrinter::fmt(ms, 1),
                     TablePrinter::fmt(flops_m(res.genotype), 1),
                     TablePrinter::fmt(params_m(res.genotype), 3)});
      state.counter("acc_" + v.key, acc);
      state.counter("latency_ms_" + v.key, ms);
    }
  }
  state.set_items_processed(static_cast<double>(variants.size()));

  if (state.verbose()) {
    bench::print_header("Ablation — hybrid objective components");
    std::cout << table.render();
    std::cout << "\nReading: trainless indicators (rows 1-3) find accurate but expensive cells; "
                 "adding a hardware term (rows 4-5) buys latency at small accuracy cost; the "
                 "degenerate latency-only objective collapses accuracy — the hybrid matters.\n";
  }
}

}  // namespace
}  // namespace micronas
