// Peak-memory-guided search (the paper's future work, implemented):
// "Future experiments will incorporate peak memory usage modeling of
// MCUs to guide the search."
//
// The MicroNas facade searches under a hard peak-SRAM constraint,
// escalating hardware weights until the discovered cell fits. We sweep
// the budget from roomy to tight and report the accuracy/memory
// trade-off curve.
#include "bench/suites/common.hpp"

namespace micronas {
namespace {

BENCH_CASE_OPTS(memory_guided, peak_sram_constraint_sweep, bench::experiment_opts()) {
  const std::array<double, 4> budgets_kb = {400.0, 344.0, 300.0, 220.0};

  TablePrinter table({"SRAM budget(KB)", "Peak SRAM(KB)", "Feasible", "ACC(%)", "Latency(ms)",
                      "Adapt rounds"});
  for (auto _ : state) {
    for (double budget : budgets_kb) {
      MicroNasConfig cfg;
      cfg.batch_size = 8;
      cfg.proxy_net.input_size = 8;
      cfg.proxy_net.base_channels = 4;
      cfg.lr.grid = 10;
      cfg.lr.input_size = 8;
      cfg.seed = 5;
      cfg.weights = IndicatorWeights::latency_guided(1.0);
      cfg.constraints.max_sram_kb = budget;

      MicroNas nas(cfg);
      const DiscoveredModel m = nas.search();
      const bool feasible = cfg.constraints.satisfied_by(m.indicators);
      const std::string key = TablePrinter::fmt(budget, 0) + "kb";
      state.counter("feasible_" + key, feasible ? 1.0 : 0.0);
      state.counter("acc_" + key, m.accuracy);
      state.counter("peak_sram_" + key, m.indicators.peak_sram_kb);
      table.add_row({TablePrinter::fmt(budget, 0), TablePrinter::fmt(m.indicators.peak_sram_kb, 1),
                     feasible ? "yes" : "no", TablePrinter::fmt(m.accuracy, 2),
                     TablePrinter::fmt(m.indicators.latency_ms, 1),
                     TablePrinter::fmt_int(m.adapt_rounds_used)});
    }
  }
  state.set_items_processed(static_cast<double>(budgets_kb.size()));

  if (state.verbose()) {
    bench::print_header("Memory-guided search — peak-SRAM constraint sweep (future work)");
    std::cout << table.render();
    std::cout << "\nReading: the peak-SRAM model steers the search away from wide high-resolution\n"
                 "cells as the budget tightens, trading accuracy for fit — the guidance loop the\n"
                 "paper's conclusion proposes.\n";
  }
}

}  // namespace
}  // namespace micronas
