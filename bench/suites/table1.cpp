// Table I reproduction (CIFAR-10): µNAS-method baseline vs TE-NAS
// (trainless, no hardware terms) vs MicroNAS (latency-guided).
//
// Columns mirror the paper: FLOPs (M), Params (M), MCU inference
// speedup over the TE-NAS model, search time (modeled GPU-hours, plus
// measured wall seconds for transparency) and CIFAR-10 accuracy
// (surrogate oracle). Paper reference rows are printed alongside.
#include <chrono>
#include <limits>
#include <optional>

#include "bench/suites/common.hpp"
#include "src/search/evolution_search.hpp"

namespace micronas {
namespace {

struct Row {
  std::string name;
  std::string key;
  nb201::Genotype genotype;
  double gpu_hours = 0.0;
  double wall_seconds = 0.0;
  double accuracy = 0.0;
  std::optional<double> latency_ms;  // measured on the MCU simulator
};

BENCH_CASE_OPTS(table1, cifar10_results, bench::experiment_opts()) {
  bench::Apparatus app(/*seed=*/42, /*batch=*/16);
  const CostModel cost;
  const MacroNetConfig deploy;
  Rng measure_rng(7);

  auto measure_ms = [&](const nb201::Genotype& g) {
    return measure_latency_ms(build_macro_model(g, deploy), app.mcu, measure_rng);
  };

  std::vector<Row> rows;

  for (auto _ : state) {
    rows.clear();

    // --- µNAS-method baseline: aging evolution with trained evaluations
    // under a tight resource budget (µNAS targets very small models).
    {
      EvolutionSearchConfig cfg;
      cfg.population_size = 50;
      cfg.tournament_size = 10;
      cfg.total_evals = 1000;
      cfg.constraints.max_params_m = 0.11;
      Rng rng(1);
      const auto t0 = std::chrono::steady_clock::now();
      const auto res = evolution_search(app.oracle, cfg, deploy, app.estimator.get(), rng);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      rows.push_back({"uNAS-method (evolution, trained)", "unas", res.genotype,
                      cost.trained_search_gpu_hours(res.trained_evals), wall, res.accuracy,
                      std::nullopt});
    }

    // --- TE-NAS: pruning search on NTK + LR only.
    {
      PruningSearchConfig cfg;
      cfg.proxy_repeats = 2;
      cfg.weights = IndicatorWeights::te_nas();
      Rng rng(2);
      const auto res = pruning_search(*app.suite, *app.hw_model, cfg, rng);
      rows.push_back({"TE-NAS (NTK+LR, no hw)", "tenas", res.genotype,
                      cost.proxy_search_gpu_hours(res.proxy_evals), res.wall_seconds,
                      app.oracle.mean_accuracy(res.genotype, nb201::Dataset::kCifar10),
                      measure_ms(res.genotype)});
    }

    // --- MicroNAS (ours): latency-guided hybrid objective with the
    // paper's adaptive weight escalation, targeting ~1/3 of the TE-NAS
    // model's estimated latency ("MicroNAS adapts FLOPs and latency
    // indicator weights, consistently discovering highly efficient
    // models across various constraints").
    {
      const double target_ms =
          app.estimator->estimate_ms(build_macro_model(rows[1].genotype, deploy)) / 3.0;
      nb201::Genotype best;
      nb201::Genotype fastest;  // fallback when no weight meets the target
      double best_acc = -1.0;
      double fastest_ms = std::numeric_limits<double>::infinity();
      double fastest_acc = -1.0;
      long long evals = 0;
      double wall = 0.0;
      for (double w : {1.0, 2.0, 4.0, 8.0}) {
        PruningSearchConfig cfg;
        cfg.proxy_repeats = 2;
        cfg.weights = IndicatorWeights::latency_guided(w);
        Rng rng(3);
        const auto res = pruning_search(*app.suite, *app.hw_model, cfg, rng);
        evals += res.proxy_evals;
        wall += res.wall_seconds;
        const double est = app.estimator->estimate_ms(build_macro_model(res.genotype, deploy));
        const double acc = app.oracle.mean_accuracy(res.genotype, nb201::Dataset::kCifar10);
        if (est <= target_ms && acc > best_acc) {
          best = res.genotype;
          best_acc = acc;
        }
        if (est < fastest_ms) {
          fastest = res.genotype;
          fastest_ms = est;
          fastest_acc = acc;
        }
      }
      // The 1/3 target is data-dependent; if every weight missed it,
      // report the fastest discovered cell instead of a genotype no
      // search produced.
      const bool target_met = best_acc >= 0.0;
      if (!target_met) {
        best = fastest;
        best_acc = fastest_acc;
      }
      state.counter("micronas_target_met", target_met ? 1.0 : 0.0);
      rows.push_back({"MicroNAS (ours, latency-guided)", "micronas", best,
                      cost.proxy_search_gpu_hours(evals), wall, best_acc, measure_ms(best)});
    }
  }
  state.set_items_processed(static_cast<double>(rows.size()));

  const double tenas_ms = *rows[1].latency_ms;
  for (const auto& r : rows) {
    state.counter("acc_" + r.key, r.accuracy);
    state.counter("gpu_hours_" + r.key, r.gpu_hours);
    if (r.latency_ms) state.counter("speedup_" + r.key, tenas_ms / *r.latency_ms);
  }

  if (state.verbose()) {
    bench::print_header("Table I — Results on CIFAR-10");
    TablePrinter table({"NAS framework", "FLOPs(M)", "Params(M)", "Latency(ms)", "Speedup",
                        "Search(GPU-h)", "Wall(s)", "ACC(%)"});
    for (const auto& r : rows) {
      const std::string latency =
          r.latency_ms ? TablePrinter::fmt(*r.latency_ms, 1) : std::string("-");
      const std::string speedup =
          r.latency_ms ? TablePrinter::fmt(tenas_ms / *r.latency_ms, 2) + "x" : std::string("-");
      table.add_row({r.name, TablePrinter::fmt(flops_m(r.genotype), 2),
                     TablePrinter::fmt(params_m(r.genotype), 3), latency, speedup,
                     TablePrinter::fmt(r.gpu_hours, 2), TablePrinter::fmt(r.wall_seconds, 1),
                     TablePrinter::fmt(r.accuracy, 2)});
    }
    std::cout << table.render();

    for (const auto& r : rows) {
      std::cout << "  " << r.name << ": " << r.genotype.to_string() << "\n";
    }

    std::cout << "\nPaper Table I reference: uNAS {params 0.014M, 552 GPU-h, 86.49%}; "
                 "TE-NAS {188.66M FLOPs, 1.317M params, 1x, 0.43 GPU-h, 93.78%}; "
                 "MicroNAS {51.04M FLOPs, 0.372M params, 3.23x, 0.43 GPU-h, 93.88%}\n";
  }
}

}  // namespace
}  // namespace micronas
