// Shared apparatus for the table/figure bench suites: a profiled
// latency estimator, a proxy suite on a synthetic probe batch, and
// helpers for uniform-cell genotypes. Kept header-only so each suite
// stays a single translation unit inside bench_runner.
#pragma once

#include <iostream>
#include <memory>

#include "bench/harness.hpp"
#include "src/core/micronas.hpp"
#include "src/core/report.hpp"
#include "src/data/synthetic.hpp"

namespace micronas::bench {

struct Apparatus {
  McuSpec mcu;
  std::unique_ptr<LatencyEstimator> estimator;
  std::unique_ptr<ProxySuite> suite;
  std::unique_ptr<SupernetHwModel> hw_model;
  nb201::SurrogateOracle oracle;

  /// `batch` probe images at `input_size`, proxy nets with `channels`.
  Apparatus(std::uint64_t seed, int batch, int input_size = 8, int channels = 4,
            nb201::Dataset dataset = nb201::Dataset::kCifar10, int lr_grid = 10) {
    Rng rng(seed);
    ProfilerOptions popts;  // jittered profiling, median-of-7
    LatencyTable table = build_latency_table(mcu, rng, MacroNetConfig{}, popts);
    estimator = std::make_unique<LatencyEstimator>(
        std::move(table), profile_constant_overhead_ms(mcu, rng, popts), mcu.clock_hz);

    ProxySuiteConfig cfg;
    cfg.proxy_net.input_size = input_size;
    cfg.proxy_net.base_channels = channels;
    cfg.proxy_net.num_classes = dataset_spec(dataset).num_classes;
    cfg.lr.grid = lr_grid;
    cfg.lr.input_size = input_size;

    Rng data_rng = rng.fork(0xDA7A);
    SyntheticDataset ds(dataset_spec(dataset), data_rng);
    Batch b = ds.sample_batch_resized(batch, input_size, data_rng);
    suite = std::make_unique<ProxySuite>(cfg, std::move(b.images), estimator.get());
    hw_model = std::make_unique<SupernetHwModel>(MacroNetConfig{}, estimator.get());
  }
};

inline nb201::Genotype uniform_cell(nb201::Op op) {
  std::array<nb201::Op, nb201::kNumEdges> ops;
  ops.fill(op);
  return nb201::Genotype(ops);
}

inline void print_header(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n\n";
}

}  // namespace micronas::bench
