// Eval-engine suite: throughput scaling of parallel proxy scoring and
// the memoized indicator cache on NB201 sweeps.
//
//   bench_runner --filter eval_engine
//   bench_runner --filter eval_engine --set samples=128,sweep=15625,max-threads=8
//
// Cases:
//  1. parallel_scaling/N — the same candidate batch scored on N
//     workers (cache off); results are verified bit-identical to the
//     serial run, and the serial-vs-N speedup is a counter. Speedups
//     track the machine's core count; on a single-core host they
//     flatten at ~1x.
//  2. cache_cold / cache_warm — an index-ordered exhaustive sweep
//     scored with the canonical-key cache on: the cold hit rate equals
//     the space's functional redundancy (~39.6 % over all 15 625
//     cells), and a warm pass is answered entirely from the cache.
#include <optional>

#include "bench/harness.hpp"
#include "bench/suites/common.hpp"
#include "src/common/cli.hpp"
#include "src/nb201/canonical.hpp"
#include "src/search/eval_engine.hpp"

namespace micronas {
namespace {

bool bitwise_equal(const IndicatorValues& a, const IndicatorValues& b) {
  return a.ntk_condition == b.ntk_condition && a.linear_regions == b.linear_regions &&
         a.flops_m == b.flops_m && a.params_m == b.params_m && a.latency_ms == b.latency_ms &&
         a.peak_sram_kb == b.peak_sram_kb && a.streamed_sram_kb == b.streamed_sram_kb;
}

std::vector<nb201::Genotype> sample_batch(std::uint64_t seed, int samples) {
  Rng rng(seed);
  return nb201::sample_genotypes(rng, samples);
}

BENCH_CASE_ARGS_OPTS(eval_engine, parallel_scaling,
                     (bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 10,
                                         .tier = 1}),
                     {1, 2, 4, 8}) {
  const auto seed = static_cast<std::uint64_t>(state.param_int("seed", 1));
  const int samples = state.param_int("samples", 64);
  const int threads = static_cast<int>(state.arg());
  // --set max-threads=N caps the scaling sweep (the smoke runs pass 2
  // so a 2-core runner never spins 8 workers); capped points record
  // zero repetitions.
  if (threads > state.param_int("max-threads", 8)) return;

  bench::Apparatus app(seed, /*batch=*/6, /*input_size=*/8, /*channels=*/4);
  const std::vector<nb201::Genotype> batch = sample_batch(seed, samples);

  EvalEngineConfig serial_cfg;
  serial_cfg.threads = 1;
  serial_cfg.cache = false;
  serial_cfg.seed = seed;
  const ProxyEvalEngine serial(*app.suite, serial_cfg);
  const auto reference = serial.evaluate_batch(batch);

  EvalEngineConfig cfg = serial_cfg;
  cfg.threads = threads;
  const ProxyEvalEngine engine(*app.suite, cfg);

  std::vector<IndicatorValues> values;
  for (auto _ : state) {
    values = engine.evaluate_batch(batch);
  }
  state.set_items_processed(samples);

  bool identical = values.size() == reference.size();
  for (std::size_t i = 0; identical && i < values.size(); ++i) {
    identical = bitwise_equal(values[i], reference[i]);
  }
  state.counter("bit_identical_to_serial", identical ? 1.0 : 0.0);
  state.counter("hardware_threads", std::thread::hardware_concurrency());
  if (state.verbose()) {
    std::cout << "[eval_engine] " << threads << " worker(s), " << samples
              << " cells, bit-identical to serial: " << (identical ? "yes" : "NO") << "\n";
  }
}

BENCH_CASE_OPTS(eval_engine, cache_sweep,
                bench::CaseOptions{.warmup = 1, .min_reps = 5, .max_reps = 10, .tier = 1}) {
  const auto seed = static_cast<std::uint64_t>(state.param_int("seed", 1));
  const int sweep = state.param_int("sweep", 1000);
  const int threads = state.param_int("max-threads", 8);

  bench::Apparatus app(seed, /*batch=*/6, /*input_size=*/8, /*channels=*/4);

  std::vector<nb201::Genotype> sweep_batch;
  sweep_batch.reserve(static_cast<std::size_t>(sweep));
  for (int i = 0; i < sweep && i < nb201::kNumArchitectures; ++i) {
    sweep_batch.push_back(nb201::Genotype::from_index(i));
  }

  EvalEngineConfig cached_cfg;
  cached_cfg.threads = threads;
  cached_cfg.cache = true;
  cached_cfg.seed = seed;

  // Each repetition gets a fresh engine so every timed sweep is
  // genuinely cold; warm-replay and identity verification run on the
  // last instance, outside the timed region, and land in counters.
  std::optional<ProxyEvalEngine> cached;
  std::vector<IndicatorValues> cold_values;
  for (auto _ : state) {
    cached.emplace(*app.suite, cached_cfg);
    cold_values = cached->evaluate_batch(sweep_batch);
  }
  state.set_items_processed(static_cast<double>(sweep_batch.size()));
  const EvalEngineStats cold = cached->stats();

  const auto warm_values = cached->evaluate_batch(sweep_batch);
  const EvalEngineStats warm = cached->stats();

  bool replay_identical = cold_values.size() == warm_values.size();
  for (std::size_t i = 0; replay_identical && i < warm_values.size(); ++i) {
    replay_identical = bitwise_equal(cold_values[i], warm_values[i]);
  }

  const long long warm_requests = warm.requests - cold.requests;
  const double warm_hit_rate =
      warm_requests > 0 ? static_cast<double>(warm.cache_hits - cold.cache_hits) /
                              static_cast<double>(warm_requests)
                        : 0.0;

  state.counter("cold_hit_rate", cold.hit_rate());
  state.counter("warm_hit_rate", warm_hit_rate);
  state.counter("proxy_evaluations", static_cast<double>(cold.evaluations));
  state.counter("warm_replay_bit_identical", replay_identical ? 1.0 : 0.0);

  if (state.verbose()) {
    const nb201::SpaceRedundancy census = nb201::analyze_space_redundancy();
    std::cout << "Space census: " << census.canonical_classes << " behaviour classes in "
              << census.total << " genotypes ("
              << TablePrinter::fmt(100.0 * census.redundancy_fraction(), 1)
              << " % functionally redundant)\n"
              << "Cold-sweep work saved by canonical-key memoization: "
              << TablePrinter::fmt(100.0 * cold.hit_rate(), 1) << " % of " << cold.requests
              << " requests; warm replay bit-identical: " << (replay_identical ? "yes" : "NO")
              << "\n";
  }
}

}  // namespace
}  // namespace micronas
