// Proxy zoo (ablation): Kendall-τ of every zero-cost indicator against
// surrogate accuracy, over one shared architecture sample — the study
// behind the paper's choice of NTK + linear regions as the performance
// indicators (and of latency over FLOPs as the hardware indicator).
#include "bench/suites/common.hpp"
#include "src/proxies/naswot.hpp"
#include "src/proxies/zero_cost.hpp"
#include "src/stats/correlation.hpp"

namespace micronas {
namespace {

constexpr int kBatch = 16;

// Tier 1 with a few repetitions: one cold single-sample median would
// flake the CI perf gate on noisy shared runners.
BENCH_CASE_OPTS(proxy_zoo, kendall_tau_vs_accuracy,
                bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 5, .tier = 1}) {
  const int archs = state.param_int("archs", 64);

  bench::Apparatus app(/*seed=*/42, /*batch=*/kBatch);
  const nb201::SurrogateOracle oracle;

  CellNetConfig proxy;
  proxy.input_size = 8;
  proxy.base_channels = 4;
  proxy.num_classes = 10;

  Rng pool_rng(31337);
  const auto pool = nb201::sample_genotypes(pool_rng, archs);

  Rng data_rng(99);
  SyntheticDataset ds(dataset_spec(nb201::Dataset::kCifar10), data_rng);
  const Batch batch = ds.sample_batch_resized(kBatch, proxy.input_size, data_rng);

  std::vector<double> acc, neg_ntk, lr, naswot, synflow, gradnorm, neg_flops, neg_lat, neg_params;
  for (auto _ : state) {
    // Repetition-safe: rebuild the per-iteration accumulators.
    for (auto* v : {&acc, &neg_ntk, &lr, &naswot, &synflow, &gradnorm, &neg_flops, &neg_lat,
                    &neg_params}) {
      v->clear();
    }
    Rng net_rng(555);
    LinearRegionOptions lr_opts;
    lr_opts.grid = 12;
    lr_opts.input_size = 8;
    for (const auto& g : pool) {
      acc.push_back(oracle.mean_accuracy(g, nb201::Dataset::kCifar10));
      neg_ntk.push_back(-ntk_condition(g, proxy, batch.images, net_rng).condition_number);
      lr.push_back(count_linear_regions(g, proxy, net_rng, lr_opts).boundary_crossings);
      naswot.push_back(naswot_score(g, proxy, batch.images, net_rng).log_det);
      synflow.push_back(synflow_score(g, proxy, net_rng).log_score);
      gradnorm.push_back(grad_norm_score(g, proxy, batch.images, net_rng).grad_norm);
      const MacroModel m = build_macro_model(g);
      neg_flops.push_back(-count_flops(m).total_m());
      neg_params.push_back(-count_params(m).total_m());
      neg_lat.push_back(-app.estimator->estimate_ms(m));
    }
  }
  state.set_items_processed(static_cast<double>(pool.size()));

  TablePrinter table({"Proxy", "Kendall tau", "Notes"});
  auto row = [&](const std::string& name, const std::string& key, const std::vector<double>& v,
                 const std::string& note) {
    const double tau = stats::kendall_tau(v, acc);
    state.counter("tau_" + key, tau);
    table.add_row({name, TablePrinter::fmt(tau, 3), note});
  };
  row("-NTK condition (paper)", "neg_ntk", neg_ntk, "trainability; lower kappa better");
  row("Linear regions (paper)", "linear_regions", lr, "expressivity; boundary crossings");
  row("NASWOT log-det", "naswot", naswot, "activation-pattern separation");
  row("SynFlow (log)", "synflow", synflow, "data-free saliency");
  row("GradNorm", "gradnorm", gradnorm, "gradient magnitude");
  row("-FLOPs", "neg_flops", neg_flops, "hardware; cheap is NOT accurate");
  row("-Params", "neg_params", neg_params, "hardware");
  row("-Latency (LUT)", "neg_latency", neg_lat, "hardware");

  if (state.verbose()) {
    bench::print_header("Proxy zoo — Kendall-tau vs accuracy (CIFAR-10)");
    std::cout << table.render();
    std::cout << "\nReading: the trainless indicators correlate positively with accuracy while\n"
                 "the hardware indicators correlate negatively — which is exactly why the paper\n"
                 "combines them with tunable weights instead of optimizing either side alone.\n";
  }
}

}  // namespace
}  // namespace micronas
