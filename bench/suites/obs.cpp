// Observability bench suite (tier 1): proves the instrumentation
// budget the ISSUE promises — a *disabled* span is one relaxed atomic
// load plus a predicted branch, so tracing compiled into every
// executor dispatch must cost nothing measurable when it is off.
//
//   obs.trace_overhead   end-to-end executor wall with tracing
//                        disabled (the production default). Gated by
//                        the CI perf job like every tier-1 case; the
//                        `overhead_pct_estimate` counter bounds what
//                        the compiled-in spans *could* cost this run
//                        (spans/run x ns/disabled-span vs measured
//                        wall) and stays deep under 1%.
//   obs.span_record      throughput of *enabled* recording into the
//                        per-thread ring (tag-free spans), i.e. the
//                        price a traced run pays per event.
//   obs.metrics_hot_path counter add + histogram observe cost — the
//                        per-request price ModelServer pays for the
//                        registry mirrors.
#include <chrono>

#include "bench/suites/common.hpp"
#include "src/compile/compiler.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/rt/runtime.hpp"

namespace micronas {
namespace {

nb201::Genotype obs_genotype() {
  return nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|skip_connect~0|nor_conv_3x3~1|+"
      "|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|");
}

BENCH_CASE_OPTS(obs, trace_overhead,
                bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 8, .tier = 1}) {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = state.param_int("cells", 1);
  options.macro.input_size = state.param_int("input", 16);
  const compile::CompiledModel model = compile::compile_genotype(obs_genotype(), options);

  DatasetSpec spec;
  spec.height = spec.width = options.macro.input_size;
  Rng rng(7);
  SyntheticDataset data(spec, rng);
  const Tensor input = data.sample_batch(1, rng).images;

  obs::disable_tracing();  // the production default this case defends
  rt::Executor exec(model.graph, model.plan, rt::ExecOptions{1, &model.packed});
  exec.run(input);  // warm outside the timed loop

  double run_ms = 1e300;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    bench::do_not_optimize(exec.run(input));
    const auto t1 = std::chrono::steady_clock::now();
    run_ms = std::min(run_ms, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }

  // Price of one disabled span, measured directly: a tight loop of
  // constructions that each take the not-tracing branch.
  constexpr int kSpans = 1'000'000;
  const auto s0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSpans; ++i) {
    OBS_SPAN("obs.disabled");
  }
  const auto s1 = std::chrono::steady_clock::now();
  const double ns_per_span =
      std::chrono::duration<double, std::nano>(s1 - s0).count() / kSpans;

  // Upper bound on what the compiled-in instrumentation can add to one
  // executor run: one span per dispatched node plus the run span.
  const double spans_per_run = static_cast<double>(model.graph.executed_node_count()) + 1.0;
  const double overhead_pct = run_ms > 0.0
                                  ? 100.0 * (spans_per_run * ns_per_span * 1e-6) / run_ms
                                  : 0.0;
  state.counter("run_ms", run_ms);
  state.counter("ns_per_disabled_span", ns_per_span);
  state.counter("spans_per_run", spans_per_run);
  state.counter("overhead_pct_estimate", overhead_pct);
  state.set_items_processed(1);
}

BENCH_CASE(obs, span_record) {
  obs::reset_trace();  // fresh rings; capacity default (1 << 16 slots)
  obs::enable_tracing();
  constexpr int kInner = 100'000;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      OBS_SPAN("obs.enabled");
    }
  }
  obs::disable_tracing();
  const std::vector<obs::TraceEvent> events = obs::snapshot_trace();
  state.counter("ring_events_kept", static_cast<double>(events.size()));
  obs::reset_trace();  // leave no ring residue for later cases
  state.set_items_processed(kInner);
}

BENCH_CASE(obs, metrics_hot_path) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::instance();
  obs::Counter& counter = registry.counter("obs.bench_counter");
  obs::Histogram& hist = registry.latency_histogram("obs.bench_latency_ms");
  constexpr int kInner = 100'000;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      counter.add();
      hist.observe(0.5 + static_cast<double>(i & 1023) * 0.01);
    }
  }
  state.counter("observations", static_cast<double>(hist.count()));
  counter.reset();
  hist.reset();
  state.set_items_processed(2.0 * kInner);  // one add + one observe per i
}

}  // namespace
}  // namespace micronas
