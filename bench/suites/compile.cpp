// Deployment-compiler bench suite (tier 1): lowering throughput, pass
// pipeline cost, memory-planner quality, and the fused-int8 vs naive
// float interpreter inference race the subsystem exists to win.
//
// The inference case reports `speedup` (naive float wall / fused int8
// wall) as a counter: the acceptance bar for the subsystem is >= 2x on
// the reduced skeleton used here (the full NB201 skeleton does better —
// see examples/compile_and_run).
#include <chrono>

#include "bench/suites/common.hpp"
#include "src/compile/compiler.hpp"
#include "src/rt/runtime.hpp"

namespace micronas {
namespace {

nb201::Genotype bench_genotype() {
  return nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|skip_connect~0|nor_conv_3x3~1|+"
      "|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|");
}

compile::CompilerOptions bench_options(bench::State& state) {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = state.param_int("cells", 1);
  options.macro.input_size = state.param_int("input", 16);
  return options;
}

BENCH_CASE(compile, lower) {
  const nb201::Genotype g = bench_genotype();
  const compile::CompilerOptions options = bench_options(state);
  ir::LowerOptions lower;
  lower.macro = options.macro;
  int nodes = 0;
  for (auto _ : state) {
    ir::Graph graph = ir::lower_genotype(g, lower);
    nodes = graph.size();
    bench::do_not_optimize(nodes);
  }
  state.counter("lowered_nodes", nodes);
  state.set_items_processed(1);
}

BENCH_CASE(compile, pass_pipeline) {
  const nb201::Genotype g = bench_genotype();
  const compile::CompilerOptions options = bench_options(state);
  int final_nodes = 0;
  for (auto _ : state) {
    const compile::CompiledModel m = compile::compile_genotype(g, options);
    final_nodes = m.graph.size();
    bench::do_not_optimize(final_nodes);
  }
  const compile::CompiledModel m = compile::compile_genotype(g, options);
  state.counter("lowered_executed", m.report.lowered_executed);
  state.counter("final_executed", m.report.final_executed);
  state.set_items_processed(1);
}

BENCH_CASE(compile, memory_plan) {
  const compile::CompiledModel m = compile::compile_genotype(bench_genotype(), bench_options(state));
  long long arena = 0;
  for (auto _ : state) {
    const rt::MemoryPlan plan = rt::plan_memory(m.graph);
    arena = plan.arena_bytes;
    bench::do_not_optimize(arena);
  }
  state.counter("arena_kb", static_cast<double>(m.plan.arena_bytes) / 1024.0);
  state.counter("reuse_factor", m.plan.reuse_factor());
  state.counter("arena_to_model_ratio", m.report.arena_to_model_ratio);
  long long aliased = 0;
  for (const rt::BufferPlacement& b : m.plan.buffers) {
    if (b.alias_of >= 0) ++aliased;
  }
  state.counter("aliased_placements", static_cast<double>(aliased));
  state.set_items_processed(1);
}

// Row-strip streaming at the planner's floor: bisect the smallest
// reachable arena_budget (feasibility is monotone — a tighter budget
// only makes the planner stream more), then time planning at exactly
// that floor. Every counter here is deterministic (pure planner
// arithmetic), so the CI memory lane gates them at a near-zero counter
// threshold: any drift in planner quality fails the lane even when
// wall time is fine.
BENCH_CASE(compile, memory_plan_streamed) {
  const compile::CompiledModel m = compile::compile_genotype(bench_genotype(), bench_options(state));
  auto fits = [&](long long budget) {
    rt::MemoryPlanOptions o;
    o.arena_budget = budget;
    try {
      rt::plan_memory(m.graph, o);
      return true;
    } catch (const std::runtime_error&) {
      return false;
    }
  };
  long long lo = 1, hi = m.plan.arena_bytes;
  while (lo < hi) {
    const long long mid = lo + (hi - lo) / 2;
    if (fits(mid)) hi = mid;
    else lo = mid + 1;
  }

  rt::MemoryPlanOptions budgeted;
  budgeted.arena_budget = lo;
  long long arena = 0;
  for (auto _ : state) {
    const rt::MemoryPlan plan = rt::plan_memory(m.graph, budgeted);
    arena = plan.arena_bytes;
    bench::do_not_optimize(arena);
  }
  const rt::MemoryPlan plan = rt::plan_memory(m.graph, budgeted);
  state.counter("min_arena_kb", static_cast<double>(plan.arena_bytes) / 1024.0);
  state.counter("streamed_nodes", static_cast<double>(plan.strips.size()));
  state.counter("stream_scratch_kb", static_cast<double>(plan.stream_scratch_bytes) / 1024.0);
  state.counter("arena_shrink",
                static_cast<double>(m.plan.arena_bytes) / static_cast<double>(plan.arena_bytes));
  state.set_items_processed(1);
}

// The headline race: fused int8 deployment graph vs the naive float
// interpreter on the same genotype, weights and input. Runs both paths
// inside one case so the `speedup` counter is apples-to-apples on the
// same machine state; wall time of this case tracks the int8 path
// (items_processed counts int8 inferences).
BENCH_CASE_OPTS(compile, int8_vs_float_inference,
                bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 8, .tier = 1}) {
  const nb201::Genotype g = bench_genotype();
  const compile::CompilerOptions options = bench_options(state);
  compile::CompilerOptions naive = options;
  naive.fold = naive.fuse = naive.quantize = false;

  const compile::CompiledModel int8_model = compile::compile_genotype(g, options);
  const compile::CompiledModel float_model = compile::compile_genotype(g, naive);

  DatasetSpec spec;
  spec.height = spec.width = options.macro.input_size;
  Rng rng(7);
  SyntheticDataset data(spec, rng);
  const Tensor input = data.sample_batch(1, rng).images;

  rt::Executor int8_exec(int8_model.graph, int8_model.plan, rt::ExecOptions{1});
  rt::Executor float_exec(float_model.graph, rt::ExecOptions{1});
  float_exec.run(input);  // warm both paths outside the timed loop
  int8_exec.run(input);

  double float_ms = 1e300;
  double int8_ms = 1e300;
  for (auto _ : state) {
    auto t0 = std::chrono::steady_clock::now();
    bench::do_not_optimize(int8_exec.run(input));
    auto t1 = std::chrono::steady_clock::now();
    bench::do_not_optimize(float_exec.run(input));
    auto t2 = std::chrono::steady_clock::now();
    int8_ms = std::min(int8_ms, std::chrono::duration<double, std::milli>(t1 - t0).count());
    float_ms = std::min(float_ms, std::chrono::duration<double, std::milli>(t2 - t1).count());
  }
  state.counter("float_naive_ms", float_ms);
  state.counter("int8_fused_ms", int8_ms);
  state.counter("speedup", float_ms / int8_ms);
  state.set_items_processed(1);
}

}  // namespace
}  // namespace micronas
