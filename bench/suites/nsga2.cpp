// NSGA-II backend suite: archive growth and hypervolume per generation
// on each MCU target, plus the cross-target cache economics of the
// scenario sweep (the shared genotype-indicator memo means only
// latency/memory re-score on targets 2+).
//
//   bench_runner --filter nsga2
//   bench_runner --filter nsga2 --set mcus=m4,m7,m7hp,pop=32,gens=12,threads=0
#include "bench/suites/common.hpp"
#include "src/common/cli.hpp"

namespace micronas {
namespace {

BENCH_CASE_OPTS(nsga2, pareto_sweep_multi_target, bench::experiment_opts()) {
  const std::string quality = state.param_string("quality", "proxy");
  if (quality != "proxy" && quality != "oracle") {
    throw std::invalid_argument("--set quality must be 'proxy' or 'oracle'");
  }

  MicroNasConfig cfg;
  cfg.seed = static_cast<std::uint64_t>(state.param_int("seed", 1));
  cfg.batch_size = 16;
  cfg.proxy_net.input_size = 8;
  cfg.proxy_net.base_channels = 4;
  cfg.lr.grid = 10;
  cfg.lr.input_size = 8;
  cfg.threads = state.param_int("threads", 1);
  MicroNas nas(cfg);

  ParetoSweepConfig sweep;
  sweep.mcu_presets = CliArgs::split_csv(state.param_string("mcus", "m4,m7,m33"));
  sweep.proxy_quality = quality == "proxy";
  sweep.nsga2.population_size = state.param_int("pop", 24);
  sweep.nsga2.generations = state.param_int("gens", 8);
  sweep.nsga2.track_hypervolume = true;

  ParetoSweepResult result;
  for (auto _ : state) {
    result = nas.pareto_sweep(sweep);
  }
  state.set_items_processed(static_cast<double>(result.scenarios.size()));

  state.counter("targets_swept", static_cast<double>(result.scenarios.size()));
  state.counter("shared_hit_rate", result.shared_stats.hit_rate());
  state.counter("cross_target_hit_rate", result.cross_target_hit_rate);
  state.counter("shared_proxy_evaluations", static_cast<double>(result.shared_stats.evaluations));
  for (const ScenarioResult& s : result.scenarios) {
    if (!s.search.history.empty()) {
      state.counter("final_hypervolume_" + s.mcu_name, s.search.history.back().hypervolume);
      state.counter("final_archive_" + s.mcu_name,
                    static_cast<double>(s.search.history.back().archive_size));
    }
  }

  if (state.verbose()) {
    bench::print_header("NSGA-II archive growth + hypervolume per generation");
    for (const ScenarioResult& s : result.scenarios) {
      std::cout << "\n[" << s.mcu_name << "]  reference point (minimized objectives):";
      for (std::size_t j = 0; j < s.search.hv_reference.size(); ++j) {
        std::cout << (j == 0 ? " " : ", ") << s.search.archive.objective_names()[j] << "="
                  << TablePrinter::fmt(s.search.hv_reference[j], 3);
      }
      std::cout << "\n";
      TablePrinter table({"Gen", "Archive", "Evals", "Hypervolume"});
      for (const Nsga2GenerationStats& g : s.search.history) {
        table.add_row({TablePrinter::fmt_int(g.generation),
                       TablePrinter::fmt_int(static_cast<long long>(g.archive_size)),
                       TablePrinter::fmt_int(g.evaluations),
                       TablePrinter::fmt(g.hypervolume, 4)});
      }
      std::cout << table.render();
      std::cout << "wall " << TablePrinter::fmt(s.search.wall_seconds, 2) << " s; shared-engine"
                << " delta: " << s.shared_delta.requests << " requests, "
                << s.shared_delta.cache_hits << " hits, " << s.shared_delta.evaluations
                << " proxy computations\n";
    }

    bench::print_header("cross-target cache economics");
    std::cout << "targets swept:            " << result.scenarios.size() << "\n"
              << "shared proxy requests:    " << result.shared_stats.requests << "\n"
              << "shared proxy evaluations: " << result.shared_stats.evaluations << "\n"
              << "overall hit rate:         "
              << TablePrinter::fmt(100.0 * result.shared_stats.hit_rate(), 1) << " %\n"
              << "cross-target hit rate:    "
              << TablePrinter::fmt(100.0 * result.cross_target_hit_rate, 1)
              << " % (targets 2+ replayed from the shared genotype-indicator cache)\n";
  }
}

}  // namespace
}  // namespace micronas
