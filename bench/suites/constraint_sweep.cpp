// §III latency-advantage reproduction: sweeping the latency-indicator
// weight from 0 (pure TE-NAS) upward, MicroNAS should trade a little
// accuracy for a 1.59x-3.23x MCU speedup band — "Our hardware-aware
// strategy provides a latency advantage of 1.59x to 3.23x with
// negligible performance trade-offs."
//
// A FLOPs-guided sweep is printed alongside: the paper observes that
// latency guidance is the better-balanced of the two because the LUT
// captures MCU-specific op costs that FLOPs miss.
#include "bench/suites/common.hpp"

namespace micronas {
namespace {

BENCH_CASE_OPTS(constraint_sweep, latency_advantage_vs_tenas, bench::experiment_opts()) {
  bench::Apparatus app(/*seed=*/42, /*batch=*/state.param_int("batch", 16));
  const MacroNetConfig deploy;
  Rng measure_rng(9);
  auto measure = [&](const nb201::Genotype& g) {
    return measure_latency_ms(build_macro_model(g, deploy), app.mcu, measure_rng);
  };

  std::string reading;
  for (auto _ : state) {
    // Baseline: TE-NAS weights.
    PruningSearchConfig base_cfg;
    base_cfg.proxy_repeats = 2;
    base_cfg.weights = IndicatorWeights::te_nas();
    Rng base_rng(1);
    const auto base = pruning_search(*app.suite, *app.hw_model, base_cfg, base_rng);
    const double base_ms = measure(base.genotype);
    const double base_acc = app.oracle.mean_accuracy(base.genotype, nb201::Dataset::kCifar10);
    state.counter("tenas_latency_ms", base_ms);
    state.counter("tenas_acc", base_acc);

    if (state.verbose()) {
      bench::print_header("Constraint sweep — latency advantage vs TE-NAS baseline");
      std::cout << "TE-NAS baseline: " << TablePrinter::fmt(base_ms, 1) << " ms, "
                << TablePrinter::fmt(base_acc, 2) << " % — " << base.genotype.to_string()
                << "\n\n";
    }

    const std::array<double, 5> weights = {0.5, 1.0, 2.0, 4.0, 8.0};
    double best_speedup = 0.0;
    double worst_dacc = 0.0;

    for (const bool latency_mode : {true, false}) {
      TablePrinter table({latency_mode ? "w_latency" : "w_flops", "Latency(ms)", "Speedup",
                          "ACC(%)", "dACC(pts)", "FLOPs(M)"});
      for (double w : weights) {
        PruningSearchConfig cfg;
        cfg.proxy_repeats = 2;
        cfg.weights = latency_mode ? IndicatorWeights::latency_guided(w)
                                   : IndicatorWeights::flops_guided(w);
        Rng rng(17);
        const auto res = pruning_search(*app.suite, *app.hw_model, cfg, rng);
        const double ms = measure(res.genotype);
        const double acc = app.oracle.mean_accuracy(res.genotype, nb201::Dataset::kCifar10);
        if (latency_mode) {
          best_speedup = std::max(best_speedup, base_ms / ms);
          worst_dacc = std::min(worst_dacc, acc - base_acc);
        }
        table.add_row({TablePrinter::fmt(w, 1), TablePrinter::fmt(ms, 1),
                       TablePrinter::fmt(base_ms / ms, 2) + "x", TablePrinter::fmt(acc, 2),
                       TablePrinter::fmt(acc - base_acc, 2),
                       TablePrinter::fmt(flops_m(res.genotype), 1)});
      }
      if (state.verbose()) {
        std::cout << (latency_mode ? "Latency-guided MicroNAS:" : "FLOPs-guided MicroNAS:")
                  << "\n"
                  << table.render() << "\n";
      }
    }
    state.counter("best_speedup", best_speedup);
    state.counter("worst_dacc_pts", worst_dacc);
    reading =
        "Paper reference: latency advantage 1.59x-3.23x across constraint levels with "
        "negligible accuracy trade-off; latency-guided beats FLOPs-guided because the "
        "LUT captures MCU-specific op costs.\n";
  }
  if (state.verbose()) std::cout << reading;
}

}  // namespace
}  // namespace micronas
