// Persistence + serving bench suite (tier 1): the cost of the .mnpkg
// round trip, the load-vs-recompile speedup the package format exists
// to deliver (acceptance bar: >= 5x — loading parses bytes while
// recompiling re-lowers, re-folds and re-runs PTQ calibration
// inference), and the batching server's throughput against a serial
// request loop on the same model and inputs.
#include <chrono>
#include <cstdio>

#include "bench/suites/common.hpp"
#include "src/compile/compiler.hpp"
#include "src/rt/runtime.hpp"
#include "src/serialize/serialize.hpp"
#include "src/serve/model_registry.hpp"
#include "src/serve/model_server.hpp"

namespace micronas {
namespace {

nb201::Genotype serve_genotype() {
  return nb201::Genotype::from_string(
      "|nor_conv_3x3~0|+|skip_connect~0|nor_conv_3x3~1|+"
      "|avg_pool_3x3~0|nor_conv_1x1~1|nor_conv_3x3~2|");
}

compile::CompilerOptions serve_options(bench::State& state, int default_input = 16) {
  compile::CompilerOptions options;
  options.macro.cells_per_stage = state.param_int("cells", 1);
  options.macro.input_size = state.param_int("input", default_input);
  return options;
}

double min_ms_of(int reps, const std::function<void()>& fn) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return best;
}

// save -> load round trip; wall time of the case tracks one full
// round trip, and the counters break out the halves plus the headline
// load_vs_recompile_speedup (compile wall / load wall, both min-of-3).
BENCH_CASE_OPTS(serve, save_load,
                bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 8, .tier = 1}) {
  const nb201::Genotype g = serve_genotype();
  const compile::CompilerOptions options = serve_options(state);
  const compile::CompiledModel model = compile::compile_genotype(g, options);

  const double compile_ms = min_ms_of(3, [&] {
    bench::do_not_optimize(compile::compile_genotype(g, options).graph.size());
  });
  std::vector<std::byte> bytes = serialize::save_model_bytes(model);
  const double save_ms = min_ms_of(3, [&] {
    bench::do_not_optimize(serialize::save_model_bytes(model).size());
  });
  const double load_ms = min_ms_of(3, [&] {
    bench::do_not_optimize(serialize::load_model_bytes(bytes).graph.size());
  });

  for (auto _ : state) {
    std::vector<std::byte> packed = serialize::save_model_bytes(model);
    const compile::CompiledModel loaded = serialize::load_model_bytes(packed);
    bench::do_not_optimize(loaded.graph.size());
  }
  state.counter("package_kb", static_cast<double>(bytes.size()) / 1024.0);
  state.counter("compile_ms", compile_ms);
  state.counter("save_ms", save_ms);
  state.counter("load_ms", load_ms);
  state.counter("load_vs_recompile_speedup", compile_ms / load_ms);
  state.set_items_processed(1);
  state.set_bytes_processed(static_cast<double>(bytes.size()));
}

// Registry loading: the mmap-backed MappedPackage path vs the copying
// load_model() path, same .mnpkg file (written to a scratch path and
// removed at the end). Both halves validate every section checksum;
// what the mapped path removes is reading + copying the weight
// payload, so mapped_vs_copy is the zero-copy dividend at load time.
// The shared-weight story is counted, not sampled: resident_weight_kb
// is what N registry loads of the same package keep resident (one
// mapping) vs copied_weight_kb for N copy-loads (N arenas) —
// deterministic byte accounting instead of RSS noise. Wall time of
// the case tracks one mapped load.
BENCH_CASE_OPTS(serve, registry_load,
                bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 8, .tier = 1}) {
  const compile::CompilerOptions options = serve_options(state);
  const int loads = state.param_int("loads", 4);
  const std::string path = "bench_registry_load.mnpkg";
  serialize::save_model(compile::compile_genotype(serve_genotype(), options), path);

  const double copy_load_ms = min_ms_of(3, [&] {
    bench::do_not_optimize(serialize::load_model(path).graph.size());
  });
  const double mapped_load_ms = min_ms_of(3, [&] {
    bench::do_not_optimize(serialize::MappedPackage::map(path)->zero_copy_bytes());
  });

  // N loads through one registry: first maps, the rest dedupe to the
  // same mapping (registry_hit_us prices the hit — a map + validate +
  // table probe, no second copy of anything).
  serve::ModelRegistry registry;
  const serve::ModelRegistry::Entry first = registry.load(path);
  const double hit_ms = min_ms_of(loads - 1 > 0 ? loads - 1 : 1, [&] {
    bench::do_not_optimize(registry.load(path).model.get());
  });
  const double weight_kb = static_cast<double>(first.package->zero_copy_bytes()) / 1024.0;

  for (auto _ : state) {
    bench::do_not_optimize(serialize::MappedPackage::map(path)->zero_copy_bytes());
  }
  std::remove(path.c_str());

  state.counter("copy_load_ms", copy_load_ms);
  state.counter("mapped_load_ms", mapped_load_ms);
  state.counter("mapped_vs_copy", copy_load_ms / mapped_load_ms);
  state.counter("registry_hit_us", hit_ms * 1000.0);
  state.counter("zero_copy_kb", weight_kb);
  state.counter("resident_weight_kb", weight_kb);  // N loads, ONE mapping
  state.counter("copied_weight_kb", weight_kb * loads);
  state.set_items_processed(1);
  state.set_bytes_processed(static_cast<double>(first.package->file_bytes()));
}

std::vector<Tensor> serve_inputs(int requests, int input_size) {
  DatasetSpec spec;
  spec.height = spec.width = input_size;
  Rng rng(7);
  SyntheticDataset data(spec, rng);
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) inputs.push_back(data.sample_batch(1, rng).images);
  return inputs;
}

/// One burst: submit every input, then drain every future. Returns the
/// min wall ms over `reps` bursts.
double burst_ms(serve::ModelServer& server, const std::vector<Tensor>& inputs, int reps) {
  return min_ms_of(reps, [&] {
    std::vector<std::future<Tensor>> futures;
    futures.reserve(inputs.size());
    for (const Tensor& in : inputs) futures.push_back(server.submit(in));
    for (std::future<Tensor>& f : futures) bench::do_not_optimize(f.get().numel());
  });
}

// Batched server vs a serial request loop, same loaded model and
// inputs; wall time of the case tracks the batched pass
// (items_processed counts its requests). The server runs the default
// one-invocation path (one BatchedExecutor::run_batch per coalesced
// batch); pass fanout=1 to bench the legacy per-slot fan-out instead.
// The batched logits are asserted bit-identical to serial in
// tests/test_serve.cpp and tests/test_batched_executor.cpp; here only
// the throughput race is measured.
BENCH_CASE_OPTS(serve, batched_vs_serial,
                bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 8, .tier = 1}) {
  const compile::CompilerOptions options = serve_options(state);
  const int requests = state.param_int("requests", 32);
  const int max_batch = state.param_int("max_batch", 8);
  const int threads = state.param_int("threads", 0);

  const std::vector<std::byte> bytes =
      serialize::save_model_bytes(compile::compile_genotype(serve_genotype(), options));
  const std::vector<Tensor> inputs = serve_inputs(requests, options.macro.input_size);

  compile::CompiledModel serial_model = serialize::load_model_bytes(bytes);
  rt::Executor serial(serial_model.graph, serial_model.plan, rt::ExecOptions{1});
  serial.run(inputs[0]);  // warm
  const double serial_ms = min_ms_of(2, [&] {
    for (const Tensor& in : inputs) bench::do_not_optimize(serial.run(in).numel());
  });

  serve::ServerOptions sopts;
  sopts.max_batch = max_batch;
  sopts.max_wait_us = 2000;
  sopts.threads = threads;
  sopts.per_slot_fanout = state.param_int("fanout", 0) != 0;
  serve::ModelServer server(serialize::load_model_bytes(bytes), sopts);

  double batched_ms = 1e300;
  for (auto _ : state) {
    batched_ms = std::min(batched_ms, burst_ms(server, inputs, 1));
  }
  const serve::ServerStats stats = server.stats();
  state.counter("serial_rps", 1000.0 * requests / serial_ms);
  state.counter("batched_rps", 1000.0 * requests / batched_ms);
  state.counter("batch_speedup", serial_ms / batched_ms);
  state.counter("mean_batch", stats.mean_batch);
  state.set_items_processed(requests);
}

// The tentpole head-to-head: one-invocation batching (a coalesced
// batch = ONE BatchedExecutor::run_batch, int8-GEMM M widened to the
// whole batch) vs the legacy per-slot fan-out (one Executor per slot
// over the shared pool) on the same model, inputs and thread budget.
// batch_speedup = fanout wall / one-invocation wall; > 1 means one
// widened invocation beats running the graph max_batch times. The
// default model is deliberately small (input=8): what one-invocation
// removes is the per-invocation cost (graph walks, kernel launches,
// pool dispatches), so the case measures the overhead-bound serving
// regime; on multi-core hosts the margin additionally includes the
// widened GEMM's better parallel scaling. Wall time of the case
// tracks the one-invocation pass.
BENCH_CASE_OPTS(serve, batched_one_invocation,
                bench::CaseOptions{.warmup = 1, .min_reps = 6, .max_reps = 12, .tier = 1}) {
  const compile::CompilerOptions options = serve_options(state, /*default_input=*/8);
  const int requests = state.param_int("requests", 128);
  const int max_batch = state.param_int("max_batch", 8);
  const int threads = state.param_int("threads", 0);

  const std::vector<std::byte> bytes =
      serialize::save_model_bytes(compile::compile_genotype(serve_genotype(), options));
  const std::vector<Tensor> inputs = serve_inputs(requests, options.macro.input_size);

  serve::ServerOptions sopts;
  sopts.max_batch = max_batch;
  sopts.max_wait_us = 2000;
  sopts.threads = threads;

  serve::ServerOptions fanout_opts = sopts;
  fanout_opts.per_slot_fanout = true;
  serve::ModelServer fanout(serialize::load_model_bytes(bytes), fanout_opts);
  serve::ModelServer batched(serialize::load_model_bytes(bytes), sopts);
  burst_ms(fanout, inputs, 1);  // warm
  burst_ms(batched, inputs, 1);

  // Interleave the contestants inside each rep (min-of-pairs): both
  // sides see the same share of ambient machine noise, so slow drift
  // between two separate measurement phases cannot fake a winner
  // either way.
  double fanout_ms = 1e300;
  double batched_ms = 1e300;
  for (auto _ : state) {
    fanout_ms = std::min(fanout_ms, burst_ms(fanout, inputs, 1));
    batched_ms = std::min(batched_ms, burst_ms(batched, inputs, 1));
  }

  state.counter("fanout_rps", 1000.0 * requests / fanout_ms);
  state.counter("one_invocation_rps", 1000.0 * requests / batched_ms);
  state.counter("batch_speedup", fanout_ms / batched_ms);
  state.counter("mean_batch", batched.stats().mean_batch);
  state.set_items_processed(requests);
}

// Overload behavior: a burst far past the bounded queue against a
// server with tight deadlines. Wall time tracks one overload burst
// (submit everything, drain every future — logits or admission
// error); the counters expose how the load split. The admission
// ledger itself (accepted == completed + dropped, submitted ==
// accepted + rejected) is asserted in tests/test_serve_overload.cpp;
// here the cost of saying no is measured: rejection is synchronous
// and must stay cheap.
BENCH_CASE_OPTS(serve, serve_overload,
                bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 8, .tier = 1}) {
  const compile::CompilerOptions options = serve_options(state);
  const int requests = state.param_int("requests", 256);
  const int max_batch = state.param_int("max_batch", 8);

  serve::ServerOptions sopts;
  sopts.max_batch = max_batch;
  sopts.max_wait_us = 200;
  sopts.threads = state.param_int("threads", 0);
  sopts.max_queue = static_cast<std::size_t>(state.param_int("max_queue", 16));
  serve::ModelServer server(
      compile::compile_genotype(serve_genotype(), options), sopts);
  const std::vector<Tensor> inputs = serve_inputs(requests, options.macro.input_size);

  long long rejected = 0;
  long long served = 0;
  for (auto _ : state) {
    std::vector<std::future<Tensor>> futures;
    futures.reserve(inputs.size());
    for (const Tensor& in : inputs) {
      try {
        futures.push_back(server.submit(in));
      } catch (const serve::QueueFullError&) {
        ++rejected;
      }
    }
    for (std::future<Tensor>& f : futures) {
      try {
        bench::do_not_optimize(f.get().numel());
        ++served;
      } catch (const serve::DeadlineExpiredError&) {
      }
    }
  }
  const serve::ServerStats stats = server.stats();
  const long long offered = served + rejected + (stats.dropped);
  state.counter("served", static_cast<double>(served));
  state.counter("rejected", static_cast<double>(rejected));
  state.counter("dropped", static_cast<double>(stats.dropped));
  state.counter("rejected_fraction",
                offered > 0 ? static_cast<double>(rejected) / static_cast<double>(offered) : 0.0);
  state.set_items_processed(requests);
}

}  // namespace
}  // namespace micronas
