// Quantized-deployment study (extension): fp32 vs int8 on the F746 for
// representative cells and for the MicroNAS-discovered model.
//
// The paper deploys fp32; real MCU pipelines quantize. This bench shows
// the int8 regime the paper's future-work section points toward: ~3x
// lower latency, 4x smaller activations (full cells fit the 320 KB
// SRAM), at a sub-point accuracy cost — and that the *ranking* of
// architectures, which is what the search consumes, is preserved.
#include "bench/suites/common.hpp"
#include "src/hw/quant.hpp"
#include "src/stats/correlation.hpp"

namespace micronas {
namespace {

// Tier 1 with a few repetitions: one cold single-sample median would
// flake the CI perf gate on noisy shared runners.
BENCH_CASE_OPTS(quantization, fp32_vs_int8_deployment,
                bench::CaseOptions{.warmup = 1, .min_reps = 3, .max_reps = 5, .tier = 1}) {
  bench::Apparatus app(/*seed=*/42, /*batch=*/8);
  Rng measure_rng(3);

  struct Case {
    std::string name;
    std::string key;
    nb201::Genotype genotype;
  };
  const std::vector<Case> cases = {
      {"all conv3x3", "conv3x3", bench::uniform_cell(nb201::Op::kConv3x3)},
      {"all conv1x1", "conv1x1", bench::uniform_cell(nb201::Op::kConv1x1)},
      {"all skip", "skip", bench::uniform_cell(nb201::Op::kSkipConnect)},
      {"best surrogate cell", "best_cell",
       nb201::Genotype::from_string("|nor_conv_3x3~0|+|nor_conv_3x3~0|nor_conv_3x3~1|+"
                                    "|skip_connect~0|nor_conv_3x3~1|nor_conv_3x3~2|")},
  };

  TablePrinter table({"Cell", "fp32 ms", "int8 ms", "Speedup", "fp32 SRAM(KB)", "int8 SRAM(KB)",
                      "fits 320KB", "ACC fp32", "ACC int8"});
  double rank_tau = 0.0;
  for (auto _ : state) {
    // Repetition-safe: rebuild the per-iteration table.
    table = TablePrinter({"Cell", "fp32 ms", "int8 ms", "Speedup", "fp32 SRAM(KB)",
                          "int8 SRAM(KB)", "fits 320KB", "ACC fp32", "ACC int8"});
    for (const auto& c : cases) {
      const MacroModel m = build_macro_model(c.genotype);
      const MacroModel q = quantize_model(m);
      const double fp32_ms = measure_latency_ms(m, app.mcu, measure_rng);
      const double int8_ms = measure_latency_ms(q, app.mcu, measure_rng);
      const MemoryReport mem32 = analyze_quantized_memory(m, QuantSpec{.bits = 32});
      const MemoryReport mem8 = analyze_quantized_memory(q);
      const double acc = app.oracle.mean_accuracy(c.genotype, nb201::Dataset::kCifar10);
      state.counter("speedup_" + c.key, fp32_ms / int8_ms);
      state.counter("int8_sram_kb_" + c.key, mem8.peak_sram_kb());
      table.add_row({c.name, TablePrinter::fmt(fp32_ms, 1), TablePrinter::fmt(int8_ms, 1),
                     TablePrinter::fmt(fp32_ms / int8_ms, 2) + "x",
                     TablePrinter::fmt(mem32.peak_sram_kb(), 0),
                     TablePrinter::fmt(mem8.peak_sram_kb(), 0),
                     mem8.peak_sram_kb() <= 320.0 ? "yes" : "no", TablePrinter::fmt(acc, 2),
                     TablePrinter::fmt(quantized_accuracy(acc), 2)});
    }

    // Rank preservation: the search only needs relative order, so verify
    // fp32 and int8 latencies rank a random sample identically.
    Rng arch_rng(9);
    std::vector<double> fp32_lat, int8_lat;
    for (const auto& g : nb201::sample_genotypes(arch_rng, 80)) {
      const MacroModel m = build_macro_model(g);
      fp32_lat.push_back(simulate_network(m).latency_ms);
      int8_lat.push_back(simulate_network(quantize_model(m)).latency_ms);
    }
    rank_tau = stats::kendall_tau(fp32_lat, int8_lat);
  }
  state.set_items_processed(static_cast<double>(cases.size()));
  state.counter("latency_rank_tau_fp32_int8", rank_tau);

  if (state.verbose()) {
    bench::print_header("Quantized deployment — fp32 vs int8 on the simulated F746");
    std::cout << table.render();
    std::cout << "\nLatency rank preservation fp32 vs int8 over 80 cells: Kendall tau = "
              << TablePrinter::fmt(rank_tau, 4) << "\n";
    std::cout << "Reading: int8 roughly triples throughput and shrinks activations 4x (full\n"
                 "cells fit the F746's SRAM), while preserving the latency ranking the\n"
                 "hardware-aware search consumes.\n";
  }
}

}  // namespace
}  // namespace micronas
