// Microkernels for the numerical substrates, including the
// proxy-cost-vs-batch-size curve that motivates the paper's batch = 32
// choice (§II.A.1: "Increasing beyond 32 to 128 ... significantly
// escalates search costs").
#include "bench/harness.hpp"
#include "src/data/synthetic.hpp"
#include "src/hw/latency_estimator.hpp"
#include "src/mcusim/profiler.hpp"
#include "src/proxies/linear_regions.hpp"
#include "src/proxies/ntk.hpp"
#include "src/tensor/ops.hpp"

namespace micronas {
namespace {

BENCH_CASE_ARGS(micro_kernels, conv2d_forward, {4, 8, 16}) {
  const int c = static_cast<int>(state.arg());
  Rng rng(1);
  Tensor x(Shape{1, c, 16, 16});
  Tensor w(Shape{c, c, 3, 3});
  rng.fill_normal(x.data());
  rng.fill_normal(w.data());
  // Inner batch keeps each sample >~100 us so timer/scheduler noise
  // cannot push a 12 us kernel past the CI regression threshold.
  constexpr int kInner = 8;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(ops::conv2d_forward(x, w, nullptr, 1, 1));
    }
  }
  state.set_items_processed(9.0 * c * c * 256 * kInner);  // MACs per sample
}

BENCH_CASE_ARGS(micro_kernels, conv2d_forward_gemm, {4, 8, 16}) {
  const int c = static_cast<int>(state.arg());
  Rng rng(1);
  Tensor x(Shape{1, c, 16, 16});
  Tensor w(Shape{c, c, 3, 3});
  rng.fill_normal(x.data());
  rng.fill_normal(w.data());
  constexpr int kInner = 8;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(ops::conv2d_forward_gemm(x, w, nullptr, 1, 1));
    }
  }
  state.set_items_processed(9.0 * c * c * 256 * kInner);
}

BENCH_CASE_ARGS(micro_kernels, conv2d_backward, {4, 8}) {
  const int c = static_cast<int>(state.arg());
  Rng rng(2);
  Tensor x(Shape{1, c, 16, 16});
  Tensor w(Shape{c, c, 3, 3});
  rng.fill_normal(x.data());
  rng.fill_normal(w.data());
  const Tensor y = ops::conv2d_forward(x, w, nullptr, 1, 1);
  Tensor gy(y.shape(), 1.0F);
  constexpr int kInner = 4;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(ops::conv2d_backward(x, w, false, 1, 1, gy));
    }
  }
  state.set_items_processed(kInner);
}

/// The paper's cost argument: NTK proxy cost vs batch size.
BENCH_CASE_ARGS(micro_kernels, ntk_condition_vs_batch, {8, 16, 32, 64}) {
  const int batch = static_cast<int>(state.arg());
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  Rng data_rng(3);
  Tensor probe(Shape{batch, 3, 8, 8});
  data_rng.fill_normal(probe.data());
  const nb201::Genotype g = nb201::Genotype::from_index(14000);
  Rng rng(4);
  for (auto _ : state) {
    bench::do_not_optimize(ntk_condition(g, cfg, probe, rng).condition_number);
  }
  state.set_items_processed(batch);
}

BENCH_CASE_ARGS(micro_kernels, linear_region_count, {8, 16}) {
  const int grid = static_cast<int>(state.arg());
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  LinearRegionOptions opts;
  opts.grid = grid;
  const nb201::Genotype g = nb201::Genotype::from_index(14000);
  Rng rng(5);
  for (auto _ : state) {
    bench::do_not_optimize(count_linear_regions(g, cfg, rng, opts).region_count);
  }
}

BENCH_CASE_ARGS(micro_kernels, sym_eig, {16, 32, 64}) {
  const int n = static_cast<int>(state.arg());
  Rng rng(6);
  std::vector<std::vector<float>> rows(static_cast<std::size_t>(n));
  for (auto& r : rows) {
    r.resize(static_cast<std::size_t>(n) * 4);
    rng.fill_normal(r);
  }
  const Matrix gram = gram_matrix(rows);
  constexpr int kInner = 4;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(sym_eig(gram).eigenvalues);
    }
  }
  state.set_items_processed(kInner);
}

BENCH_CASE(micro_kernels, latency_estimate) {
  Rng rng(7);
  ProfilerOptions opts;
  opts.deterministic = true;
  LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, opts);
  const LatencyEstimator est(std::move(table),
                             profile_constant_overhead_ms(McuSpec{}, rng, opts));
  const MacroModel m = build_macro_model(nb201::Genotype::from_index(9999));
  constexpr int kInner = 256;  // sub-microsecond op; batch per sample
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) bench::do_not_optimize(est.estimate_ms(m));
  }
  state.set_items_processed(kInner);
}

BENCH_CASE(micro_kernels, mcu_simulate) {
  const MacroModel m = build_macro_model(nb201::Genotype::from_index(9999));
  constexpr int kInner = 32;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) bench::do_not_optimize(simulate_network(m).latency_ms);
  }
  state.set_items_processed(kInner);
}

BENCH_CASE(micro_kernels, surrogate_accuracy) {
  const nb201::SurrogateOracle oracle;
  constexpr int kInner = 512;
  int idx = 0;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(oracle.accuracy(nb201::Genotype::from_index(idx % 15625),
                                             nb201::Dataset::kCifar10));
      ++idx;
    }
  }
  state.set_items_processed(kInner);
}

BENCH_CASE(micro_kernels, macro_model_build) {
  constexpr int kInner = 64;
  int idx = 0;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(
          build_macro_model(nb201::Genotype::from_index(idx % 15625)).layers.size());
      ++idx;
    }
  }
  state.set_items_processed(kInner);
}

BENCH_CASE(micro_kernels, synthetic_batch) {
  Rng rng(8);
  SyntheticDataset ds(dataset_spec(nb201::Dataset::kCifar10), rng);
  for (auto _ : state) {
    bench::do_not_optimize(ds.sample_batch_resized(32, 16, rng).images.numel());
  }
  state.set_bytes_processed(32.0 * 3 * 16 * 16 * sizeof(float));
}

}  // namespace
}  // namespace micronas
