// Microkernels for the numerical substrates, including the
// proxy-cost-vs-batch-size curve that motivates the paper's batch = 32
// choice (§II.A.1: "Increasing beyond 32 to 128 ... significantly
// escalates search costs").
#include <cstdint>
#include <random>
#include <vector>

#include "bench/harness.hpp"
#include "src/data/synthetic.hpp"
#include "src/hw/latency_estimator.hpp"
#include "src/hw/quant.hpp"
#include "src/mcusim/profiler.hpp"
#include "src/proxies/linear_regions.hpp"
#include "src/proxies/ntk.hpp"
#include "src/rt/kernels_int8.hpp"
#include "src/rt/kernels_int8_gemm.hpp"
#include "src/tensor/ops.hpp"

namespace micronas {
namespace {

BENCH_CASE_ARGS(micro_kernels, conv2d_forward, {4, 8, 16}) {
  const int c = static_cast<int>(state.arg());
  Rng rng(1);
  Tensor x(Shape{1, c, 16, 16});
  Tensor w(Shape{c, c, 3, 3});
  rng.fill_normal(x.data());
  rng.fill_normal(w.data());
  // Inner batch keeps each sample >~100 us so timer/scheduler noise
  // cannot push a 12 us kernel past the CI regression threshold.
  constexpr int kInner = 8;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(ops::conv2d_forward(x, w, nullptr, 1, 1));
    }
  }
  state.set_items_processed(9.0 * c * c * 256 * kInner);  // MACs per sample
}

BENCH_CASE_ARGS(micro_kernels, conv2d_forward_gemm, {4, 8, 16}) {
  const int c = static_cast<int>(state.arg());
  Rng rng(1);
  Tensor x(Shape{1, c, 16, 16});
  Tensor w(Shape{c, c, 3, 3});
  rng.fill_normal(x.data());
  rng.fill_normal(w.data());
  constexpr int kInner = 8;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(ops::conv2d_forward_gemm(x, w, nullptr, 1, 1));
    }
  }
  state.set_items_processed(9.0 * c * c * 256 * kInner);
}

BENCH_CASE_ARGS(micro_kernels, conv2d_backward, {4, 8}) {
  const int c = static_cast<int>(state.arg());
  Rng rng(2);
  Tensor x(Shape{1, c, 16, 16});
  Tensor w(Shape{c, c, 3, 3});
  rng.fill_normal(x.data());
  rng.fill_normal(w.data());
  const Tensor y = ops::conv2d_forward(x, w, nullptr, 1, 1);
  Tensor gy(y.shape(), 1.0F);
  constexpr int kInner = 4;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(ops::conv2d_backward(x, w, false, 1, 1, gy));
    }
  }
  state.set_items_processed(kInner);
}

/// The paper's cost argument: NTK proxy cost vs batch size.
BENCH_CASE_ARGS(micro_kernels, ntk_condition_vs_batch, {8, 16, 32, 64}) {
  const int batch = static_cast<int>(state.arg());
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  Rng data_rng(3);
  Tensor probe(Shape{batch, 3, 8, 8});
  data_rng.fill_normal(probe.data());
  const nb201::Genotype g = nb201::Genotype::from_index(14000);
  Rng rng(4);
  for (auto _ : state) {
    bench::do_not_optimize(ntk_condition(g, cfg, probe, rng).condition_number);
  }
  state.set_items_processed(batch);
}

BENCH_CASE_ARGS(micro_kernels, linear_region_count, {8, 16}) {
  const int grid = static_cast<int>(state.arg());
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  LinearRegionOptions opts;
  opts.grid = grid;
  const nb201::Genotype g = nb201::Genotype::from_index(14000);
  Rng rng(5);
  for (auto _ : state) {
    bench::do_not_optimize(count_linear_regions(g, cfg, rng, opts).region_count);
  }
}

BENCH_CASE_ARGS(micro_kernels, sym_eig, {16, 32, 64}) {
  const int n = static_cast<int>(state.arg());
  Rng rng(6);
  std::vector<std::vector<float>> rows(static_cast<std::size_t>(n));
  for (auto& r : rows) {
    r.resize(static_cast<std::size_t>(n) * 4);
    rng.fill_normal(r);
  }
  const Matrix gram = gram_matrix(rows);
  constexpr int kInner = 4;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(sym_eig(gram).eigenvalues);
    }
  }
  state.set_items_processed(kInner);
}

BENCH_CASE(micro_kernels, latency_estimate) {
  Rng rng(7);
  ProfilerOptions opts;
  opts.deterministic = true;
  LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, opts);
  const LatencyEstimator est(std::move(table),
                             profile_constant_overhead_ms(McuSpec{}, rng, opts));
  const MacroModel m = build_macro_model(nb201::Genotype::from_index(9999));
  constexpr int kInner = 256;  // sub-microsecond op; batch per sample
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) bench::do_not_optimize(est.estimate_ms(m));
  }
  state.set_items_processed(kInner);
}

BENCH_CASE(micro_kernels, mcu_simulate) {
  const MacroModel m = build_macro_model(nb201::Genotype::from_index(9999));
  constexpr int kInner = 32;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) bench::do_not_optimize(simulate_network(m).latency_ms);
  }
  state.set_items_processed(kInner);
}

BENCH_CASE(micro_kernels, surrogate_accuracy) {
  const nb201::SurrogateOracle oracle;
  constexpr int kInner = 512;
  int idx = 0;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(oracle.accuracy(nb201::Genotype::from_index(idx % 15625),
                                             nb201::Dataset::kCifar10));
      ++idx;
    }
  }
  state.set_items_processed(kInner);
}

BENCH_CASE(micro_kernels, macro_model_build) {
  constexpr int kInner = 64;
  int idx = 0;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      bench::do_not_optimize(
          build_macro_model(nb201::Genotype::from_index(idx % 15625)).layers.size());
      ++idx;
    }
  }
  state.set_items_processed(kInner);
}

BENCH_CASE(micro_kernels, synthetic_batch) {
  Rng rng(8);
  SyntheticDataset ds(dataset_spec(nb201::Dataset::kCifar10), rng);
  for (auto _ : state) {
    bench::do_not_optimize(ds.sample_batch_resized(32, 16, rng).images.numel());
  }
  state.set_bytes_processed(32.0 * 3 * 16 * 16 * sizeof(float));
}

// ------------------------------------------------- int8 deployment path
//
// The packed/blocked int8 kernels behind qconv2d_auto / qlinear_auto,
// on the channel/plane shapes of the deployed CIFAR stages (c channels
// on a 256/c-pixel-wide plane). items = MACs (the suite convention, so
// items_per_second reads as MAC/s), bytes = the real per-call traffic
// (activations in/out + packed weights), so bytes_per_second is GB/s.

/// Deterministic int8 conv operands shared by the int8 micro cases.
struct Int8ConvBench {
  int cin, hw, cout, kernel, stride, pad, out_hw;
  std::vector<std::int8_t> input, weight, output, scratch;
  std::vector<std::int32_t> bias, weight_sum, mantissa;
  std::vector<int> shift;
  rt::PackedWeights packed;

  Int8ConvBench(int cin_, int hw_, int cout_, int kernel_, int stride_, int pad_)
      : cin(cin_), hw(hw_), cout(cout_), kernel(kernel_), stride(stride_), pad(pad_) {
    out_hw = (hw + 2 * pad - kernel) / stride + 1;
    const int patch = cin * kernel * kernel;
    std::mt19937 rng(1234);
    input.resize(static_cast<std::size_t>(cin) * hw * hw);
    weight.resize(static_cast<std::size_t>(cout) * patch);
    for (auto& v : input) v = static_cast<std::int8_t>(rng());
    for (auto& v : weight) v = static_cast<std::int8_t>(rng());
    bias.resize(cout);
    weight_sum.assign(cout, 0);
    mantissa.resize(cout);
    shift.resize(cout);
    for (int c = 0; c < cout; ++c) {
      bias[c] = static_cast<std::int32_t>(rng() % 512) - 256;
      for (int k = 0; k < patch; ++k) weight_sum[c] += weight[c * patch + k];
      quantize_multiplier(0.0037, &mantissa[c], &shift[c]);
    }
    output.resize(static_cast<std::size_t>(cout) * out_hw * out_hw);
    scratch.resize(std::max<std::size_t>(
        static_cast<std::size_t>(out_hw) * out_hw * patch,
        rt::qconv_gemm_scratch_bytes(cin, hw, hw, kernel, pad, out_hw, out_hw)));
    packed = rt::pack_weights_dot16(weight.data(), cout, patch);
  }

  rt::QConv2dArgs args() {
    rt::QConv2dArgs a{};
    a.batch = 1;
    a.cin = cin;
    a.h = a.w = hw;
    a.cout = cout;
    a.kernel = kernel;
    a.stride = stride;
    a.pad = pad;
    a.out_h = a.out_w = out_hw;
    a.in_zp = -3;
    a.out_zp = 5;
    a.fused_relu = true;
    a.input = input.data();
    a.weight = weight.data();
    a.bias = bias.data();
    a.weight_sum = weight_sum.data();
    a.mantissa = mantissa.data();
    a.shift = shift.data();
    a.columns = scratch.data();
    a.output = output.data();
    return a;
  }

  double macs() const {
    return 1.0 * cout * out_hw * out_hw * cin * kernel * kernel;
  }
  double traffic_bytes() const {
    return static_cast<double>(input.size()) + static_cast<double>(output.size()) +
           static_cast<double>(packed.data.size() * sizeof(std::int16_t));
  }
};

/// 3x3 im2col-GEMM conv on the model's (c, 256/c-pixel) stages.
BENCH_CASE_ARGS(micro_kernels, qconv2d_int8_gemm, {16, 32, 64}) {
  const int c = static_cast<int>(state.arg());
  Int8ConvBench b(c, 256 / c, c, 3, 1, 1);
  const rt::QConv2dArgs a = b.args();
  constexpr int kInner = 8;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      rt::qconv2d_auto(a, &b.packed, nullptr);
      bench::do_not_optimize(b.output.data());
    }
  }
  state.set_items_processed(b.macs() * kInner);
  state.set_bytes_processed(b.traffic_bytes() * kInner);
}

/// 1x1 direct conv (no im2col) on a 256-pixel plane.
BENCH_CASE_ARGS(micro_kernels, qconv2d_int8_direct, {16, 32}) {
  const int c = static_cast<int>(state.arg());
  Int8ConvBench b(c, 256 / c, c, 1, 1, 0);
  const rt::QConv2dArgs a = b.args();
  constexpr int kInner = 16;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      rt::qconv2d_auto(a, &b.packed, nullptr);
      bench::do_not_optimize(b.output.data());
    }
  }
  state.set_items_processed(b.macs() * kInner);
  state.set_bytes_processed(b.traffic_bytes() * kInner);
}

/// Scalar reference on the first 3x3 stage: the floor the blocked
/// kernels are measured against (and the only path portable builds
/// run).
BENCH_CASE(micro_kernels, qconv2d_int8_scalar) {
  Int8ConvBench b(16, 16, 16, 3, 1, 1);
  const rt::QConv2dArgs a = b.args();
  constexpr int kInner = 4;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      rt::qconv2d(a, nullptr);
      bench::do_not_optimize(b.output.data());
    }
  }
  state.set_items_processed(b.macs() * kInner);
  state.set_bytes_processed(b.traffic_bytes() * kInner);
}

/// Classifier-head GEMM: 64 features -> 10 logits.
BENCH_CASE(micro_kernels, qlinear_int8_gemm) {
  const int in_f = 64, out_f = 10;
  std::mt19937 rng(77);
  std::vector<std::int8_t> input(in_f), weight(static_cast<std::size_t>(out_f) * in_f),
      output(out_f);
  for (auto& v : input) v = static_cast<std::int8_t>(rng());
  for (auto& v : weight) v = static_cast<std::int8_t>(rng());
  std::vector<std::int32_t> bias(out_f), wsum(out_f, 0), mant(out_f);
  std::vector<int> shift(out_f);
  for (int o = 0; o < out_f; ++o) {
    bias[o] = static_cast<std::int32_t>(rng() % 128) - 64;
    for (int k = 0; k < in_f; ++k) wsum[o] += weight[o * in_f + k];
    quantize_multiplier(0.0021, &mant[o], &shift[o]);
  }
  const rt::PackedWeights packed = rt::pack_weights_dot16(weight.data(), out_f, in_f);
  rt::QLinearArgs a{};
  a.batch = 1;
  a.in_features = in_f;
  a.out_features = out_f;
  a.in_zp = 2;
  a.out_zp = -7;
  a.input = input.data();
  a.weight = weight.data();
  a.bias = bias.data();
  a.weight_sum = wsum.data();
  a.mantissa = mant.data();
  a.shift = shift.data();
  a.output = output.data();
  constexpr int kInner = 256;
  for (auto _ : state) {
    for (int i = 0; i < kInner; ++i) {
      rt::qlinear_auto(a, &packed, nullptr);
      bench::do_not_optimize(output.data());
    }
  }
  state.set_items_processed(1.0 * out_f * in_f * kInner);
  state.set_bytes_processed(
      (static_cast<double>(input.size()) + output.size() + packed.data.size() * 2.0) * kInner);
}

}  // namespace
}  // namespace micronas
