#include "bench/compare.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/core/report.hpp"

namespace micronas::bench {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::kOk: return "ok";
    case Verdict::kRegression: return "REGRESSION";
    case Verdict::kImprovement: return "improvement";
    case Verdict::kMissing: return "MISSING";
    case Verdict::kNew: return "new";
  }
  return "?";
}

CompareResult compare_reports(const Report& baseline, const Report& current,
                              const CompareOptions& opts) {
  CompareResult result;

  auto find_case = [](const Report& report, const std::string& full_name) -> const CaseResult* {
    for (const CaseResult& c : report.cases) {
      if (c.full_name() == full_name) return &c;
    }
    return nullptr;
  };

  for (const CaseResult& base : baseline.cases) {
    CaseComparison cmp;
    cmp.full_name = base.full_name();
    cmp.baseline_median_ms = base.wall_ms.median;

    const CaseResult* cur = find_case(current, cmp.full_name);
    if (cur == nullptr) {
      cmp.verdict = Verdict::kMissing;
      ++result.missing;
      result.cases.push_back(cmp);
      continue;
    }
    cmp.current_median_ms = cur->wall_ms.median;
    // A case that stopped producing measurements (capped, early-
    // returned, or broken) must not sail through as 'ok': its
    // coverage is gone, so it counts as missing.
    if (base.wall_ms.median > 0.0 && cur->wall_ms.median <= 0.0) {
      cmp.verdict = Verdict::kMissing;
      ++result.missing;
      result.cases.push_back(cmp);
      continue;
    }
    if (base.wall_ms.median > 0.0) {
      cmp.ratio = cur->wall_ms.median / base.wall_ms.median;
    }
    if (cmp.ratio > 1.0 + opts.threshold) {
      cmp.verdict = Verdict::kRegression;
      ++result.regressions;
    } else if (cmp.ratio > 0.0 && cmp.ratio < 1.0 - opts.threshold) {
      cmp.verdict = Verdict::kImprovement;
      ++result.improvements;
    }
    if (opts.counter_threshold > 0.0) {
      for (const auto& [name, base_value] : base.counters) {
        CounterDrift drift;
        drift.name = name;
        drift.baseline = base_value;
        const auto it = cur->counters.find(name);
        if (it == cur->counters.end()) {
          drift.missing = true;
        } else {
          drift.current = it->second;
          drift.rel = std::abs(it->second - base_value) / std::max(std::abs(base_value), 1e-12);
          if (drift.rel <= opts.counter_threshold) continue;
        }
        cmp.counter_drifts.push_back(std::move(drift));
      }
      if (!cmp.counter_drifts.empty()) ++result.counter_regressions;
    }
    result.cases.push_back(cmp);
  }

  for (const CaseResult& cur : current.cases) {
    if (find_case(baseline, cur.full_name()) != nullptr) continue;
    CaseComparison cmp;
    cmp.full_name = cur.full_name();
    cmp.current_median_ms = cur.wall_ms.median;
    cmp.verdict = Verdict::kNew;
    ++result.added;
    result.cases.push_back(cmp);
  }
  return result;
}

std::string render_comparison(const CompareResult& result, const CompareOptions& opts) {
  TablePrinter table({"Case", "Base median(ms)", "Curr median(ms)", "Ratio", "Verdict"});
  for (const CaseComparison& c : result.cases) {
    auto ms = [](double v) { return v > 0.0 ? TablePrinter::fmt(v, 3) : std::string("-"); };
    table.add_row({c.full_name, ms(c.baseline_median_ms), ms(c.current_median_ms),
                   c.ratio > 0.0 ? TablePrinter::fmt(c.ratio, 2) + "x" : "-",
                   verdict_name(c.verdict)});
    for (const CounterDrift& d : c.counter_drifts) {
      table.add_row({"  counter " + d.name, TablePrinter::fmt(d.baseline, 4),
                     d.missing ? "-" : TablePrinter::fmt(d.current, 4),
                     d.missing ? "-" : TablePrinter::fmt(100.0 * d.rel, 2) + "%",
                     d.missing ? "MISSING" : "DRIFT"});
    }
  }

  char summary[320];
  std::snprintf(summary, sizeof(summary),
                "\nthreshold +/-%.0f%%: %d regression(s), %d improvement(s), %d missing, "
                "%d new, %d counter drift(s) — %s\n",
                opts.threshold * 100.0, result.regressions, result.improvements, result.missing,
                result.added, result.counter_regressions, result.failed(opts) ? "FAIL" : "PASS");
  return table.render() + summary;
}

}  // namespace micronas::bench
