// Unified micro/macro benchmark harness.
//
// Every bench suite in bench/suites/ registers cases with BENCH_CASE /
// BENCH_CASE_OPTS / BENCH_CASE_ARGS and is linked into the single
// `bench_runner` CLI, which can list, filter and run cases and writes
// one canonical BENCH_<suite>.json telemetry document (schema below).
// `bench_compare` diffs two such documents against a regression
// threshold; scripts/bench.sh drives both in CI.
//
// A case body times its workload with the range-for protocol borrowed
// from Google Benchmark — each loop iteration is one repetition sample:
//
//   BENCH_CASE(latency, estimate_lut) {
//     LatencyEstimator est = make_estimator();
//     for (auto _ : state) {
//       do_not_optimize(est.estimate_ms(model));
//     }
//     state.set_items_processed(1);
//   }
//
// The harness discards warmup iterations, then records wall + CPU time
// per repetition until either the sample is steady (relative stddev
// below CaseOptions::steady_rsd after min_reps) or max_reps is hit,
// and aggregates robust statistics (min/median/mean/p90/max/stddev).
// Macro experiment cases (whole search reproductions) register with
// experiment_opts() — one timed repetition, no warmup — and report
// their scientific results through state.counter().
//
// JSON schema (schema_version 1):
//
//   {
//     "schema_version": 1,
//     "build": {"git_sha", "compiler", "flags", "build_type",
//               "hardware_threads", "timestamp_utc"},
//     "cases": [
//       {"suite", "case", "tier", "params": {"batch": "16", ...},
//        "stats": {"repetitions", "warmup",
//                  "wall_ms":  {"min","median","mean","p90","max","stddev"},
//                  "cpu_ms":   {"min","median","mean","p90","max","stddev"}},
//        "items_per_second": 123.4,        // optional
//        "bytes_per_second": 567.8,        // optional
//        "counters": {"kendall_tau": 0.42, ...}}   // optional
//     ]
//   }
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/common/json.hpp"

namespace micronas::bench {

// The strict JSON value moved into the library (src/common/json.hpp)
// so src/obs could share it; bench code keeps its historical
// unqualified spelling via these aliases.
using json::Json;
using json::JsonArray;
using json::JsonObject;
using json::load_json_file;
using json::save_json_file;

// ------------------------------------------------------------ statistics

/// Robust aggregate over repetition samples (milliseconds).
struct SampleStats {
  std::size_t count = 0;
  double min = 0.0;
  double median = 0.0;
  double mean = 0.0;
  double p90 = 0.0;
  double max = 0.0;
  double stddev = 0.0;  // sample stddev (n-1); 0 for n < 2
};

/// Aggregate `samples` (any unit). Exposed for tests.
SampleStats compute_stats(std::vector<double> samples);

// ------------------------------------------------------------- case setup

/// Per-case repetition policy. Negative fields inherit runner defaults.
struct CaseOptions {
  int warmup = -1;        // discarded leading iterations
  int min_reps = -1;      // samples always collected
  int max_reps = -1;      // hard iteration ceiling
  double steady_rsd = -1.0;  // early exit: stddev/mean below this after min_reps
  int tier = 1;           // 1 = fast (CI perf job), 2 = slow macro reproduction
};

/// One timed repetition, no warmup, no steady-state exit — for macro
/// experiment cases where a single run *is* the measurement.
CaseOptions experiment_opts(int tier = 2);

// ------------------------------------------------------------------ state

class Runner;

/// Per-case execution context: the timed loop, parameter lookup and
/// metric reporting. Constructed by the Runner only.
class State {
 public:
  // Range-for timing protocol: `for (auto _ : state) { work(); }`.
  // The dereference type has user-provided special members so the
  // unused loop variable does not trip -Wunused-variable /
  // -Wunused-but-set-variable.
  struct Tick {
    Tick() {}
    ~Tick() {}  // NOLINT(modernize-use-equals-default)
  };
  struct Iterator {
    State* state;
    bool operator!=(const Iterator&) const { return state->keep_running(); }
    void operator++() {}
    Tick operator*() const { return Tick(); }
  };
  Iterator begin() { return Iterator{this}; }
  Iterator end() { return Iterator{nullptr}; }

  /// Registration argument for BENCH_CASE_ARGS cases (0 otherwise).
  std::int64_t arg() const { return arg_; }

  /// Runner-provided `--set name=value` override with fallback; the
  /// effective value is recorded in the JSON params block either way.
  int param_int(const std::string& name, int fallback);
  double param_double(const std::string& name, double fallback);
  std::string param_string(const std::string& name, const std::string& fallback);

  /// Record a parameter that is fixed in code (still telemetry-worthy).
  void record_param(const std::string& name, const std::string& value);

  /// Work volume per loop iteration; converted to items/bytes per
  /// second using the median wall time.
  void set_items_processed(double items_per_iteration);
  void set_bytes_processed(double bytes_per_iteration);

  /// Scientific result metric (Kendall tau, accuracy, hit rate, ...).
  void counter(const std::string& name, double value);

  /// True when the runner was invoked with --verbose; cases gate their
  /// human-readable tables on this so default runs stay parseable.
  bool verbose() const { return verbose_; }

 private:
  friend class Runner;
  State() = default;

  bool keep_running();

  // Filled by the Runner.
  const std::map<std::string, std::string>* overrides_ = nullptr;
  CaseOptions options_;
  std::int64_t arg_ = 0;
  bool verbose_ = false;

  // Loop bookkeeping.
  bool started_ = false;
  int iteration_ = 0;
  double wall_start_ = 0.0;
  double cpu_start_ = 0.0;
  std::vector<double> wall_ms_;
  std::vector<double> cpu_ms_;

  // Reported results.
  std::map<std::string, std::string> params_;
  std::map<std::string, double> counters_;
  double items_per_iteration_ = 0.0;
  double bytes_per_iteration_ = 0.0;
};

/// Compiler barrier so benchmarked expressions are not optimized away.
template <typename T>
inline void do_not_optimize(T&& value) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : : "g"(value) : "memory");
#else
  static volatile T sink = value;
  (void)sink;
#endif
}

// --------------------------------------------------------------- registry

using CaseFn = void (*)(State&);

struct CaseInfo {
  std::string suite;
  std::string name;  // includes "/<arg>" suffix for BENCH_CASE_ARGS
  CaseFn fn = nullptr;
  CaseOptions options;
  std::int64_t arg = 0;

  std::string full_name() const { return suite + "." + name; }
};

class Registry {
 public:
  static Registry& instance();
  void add(CaseInfo info);
  /// All cases, sorted by (suite, name) for stable listing and output.
  std::vector<CaseInfo> sorted_cases() const;

 private:
  std::vector<CaseInfo> cases_;
};

struct Registrar {
  Registrar(const char* suite, const char* name, CaseFn fn, CaseOptions options,
            std::vector<std::int64_t> args = {});
};

#define MICRONAS_BENCH_CONCAT_(a, b) a##b
#define MICRONAS_BENCH_CONCAT(a, b) MICRONAS_BENCH_CONCAT_(a, b)

#define MICRONAS_BENCH_CASE_IMPL(suite, name, opts, args)                               \
  static void MICRONAS_BENCH_CONCAT(micronas_bench_, __LINE__)(::micronas::bench::State&); \
  static const ::micronas::bench::Registrar MICRONAS_BENCH_CONCAT(                      \
      micronas_bench_reg_, __LINE__)(#suite, #name,                                     \
                                     &MICRONAS_BENCH_CONCAT(micronas_bench_, __LINE__), \
                                     opts, args);                                       \
  static void MICRONAS_BENCH_CONCAT(micronas_bench_, __LINE__)(::micronas::bench::State & state)

/// Register `suite.name` with runner-default repetition policy.
#define BENCH_CASE(suite, name) \
  MICRONAS_BENCH_CASE_IMPL(suite, name, ::micronas::bench::CaseOptions{}, {})

/// Register with explicit CaseOptions (e.g. experiment_opts() or a
/// braced CaseOptions literal — variadic so embedded commas are fine).
#define BENCH_CASE_OPTS(suite, name, ...) \
  MICRONAS_BENCH_CASE_IMPL(suite, name, (__VA_ARGS__), {})

/// Register one case per argument: `suite.name/arg`, state.arg() set.
#define BENCH_CASE_ARGS(suite, name, ...) \
  MICRONAS_BENCH_CASE_IMPL(suite, name, ::micronas::bench::CaseOptions{}, \
                           (std::vector<std::int64_t>__VA_ARGS__))

/// BENCH_CASE_ARGS with explicit options.
#define BENCH_CASE_ARGS_OPTS(suite, name, opts, ...) \
  MICRONAS_BENCH_CASE_IMPL(suite, name, opts, (std::vector<std::int64_t>__VA_ARGS__))

// ----------------------------------------------------------------- report

/// Toolchain + host provenance stamped into every JSON document.
struct BuildInfo {
  std::string git_sha;
  std::string compiler;
  std::string flags;
  std::string build_type;
  int hardware_threads = 0;
  std::string timestamp_utc;
};

/// Compiled-in build metadata (CMake definitions) + current host info.
BuildInfo current_build_info();

struct CaseResult {
  std::string suite;
  std::string name;
  int tier = 1;
  std::map<std::string, std::string> params;
  int warmup = 0;
  SampleStats wall_ms;
  SampleStats cpu_ms;
  double items_per_second = 0.0;  // 0 = not reported
  double bytes_per_second = 0.0;  // 0 = not reported
  std::map<std::string, double> counters;

  std::string full_name() const { return suite + "." + name; }
};

struct Report {
  BuildInfo build;
  std::vector<CaseResult> cases;

  Json to_json() const;
  static Report from_json(const Json& doc);

  /// Append `other`'s cases (build info of *this* wins); duplicate
  /// suite.case keys are replaced by the later document.
  void merge(const Report& other);
};

// ----------------------------------------------------------------- runner

struct RunnerOptions {
  std::string filter;      // substring on "suite.case"; empty = all
  int tier = 0;            // 0 = every tier, else exact match
  bool verbose = false;
  std::map<std::string, std::string> overrides;  // --set name=value
  // Runner-wide repetition defaults (per-case CaseOptions win).
  int warmup = 2;
  int min_reps = 5;
  int max_reps = 30;
  double steady_rsd = 0.05;
};

class Runner {
 public:
  explicit Runner(RunnerOptions options) : options_(std::move(options)) {}

  /// Cases selected by the filter/tier, in stable order.
  std::vector<CaseInfo> selection() const;

  /// Execute the selection, streaming one summary line per case to
  /// `progress` (stderr in the CLI; may be null).
  Report run(std::ostream* progress) const;

 private:
  CaseOptions effective_options(const CaseOptions& c) const;
  RunnerOptions options_;
};

}  // namespace micronas::bench
