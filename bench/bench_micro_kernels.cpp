// Google-benchmark microkernels for the numerical substrates, including
// the proxy-cost-vs-batch-size curve that motivates the paper's batch
// = 32 choice (§II.A.1: "Increasing beyond 32 to 128 ... significantly
// escalates search costs").
#include <benchmark/benchmark.h>

#include "src/data/synthetic.hpp"
#include "src/hw/latency_estimator.hpp"
#include "src/mcusim/profiler.hpp"
#include "src/proxies/linear_regions.hpp"
#include "src/proxies/ntk.hpp"
#include "src/tensor/ops.hpp"

namespace micronas {
namespace {

void BM_Conv2dForward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor x(Shape{1, c, 16, 16});
  Tensor w(Shape{c, c, 3, 3});
  rng.fill_normal(x.data());
  rng.fill_normal(w.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::conv2d_forward(x, w, nullptr, 1, 1));
  }
  state.SetItemsProcessed(state.iterations() * 9LL * c * c * 256);
}
BENCHMARK(BM_Conv2dForward)->Arg(4)->Arg(8)->Arg(16);

void BM_Conv2dForwardGemm(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  Rng rng(1);
  Tensor x(Shape{1, c, 16, 16});
  Tensor w(Shape{c, c, 3, 3});
  rng.fill_normal(x.data());
  rng.fill_normal(w.data());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::conv2d_forward_gemm(x, w, nullptr, 1, 1));
  }
  state.SetItemsProcessed(state.iterations() * 9LL * c * c * 256);
}
BENCHMARK(BM_Conv2dForwardGemm)->Arg(4)->Arg(8)->Arg(16);


void BM_Conv2dBackward(benchmark::State& state) {
  const int c = static_cast<int>(state.range(0));
  Rng rng(2);
  Tensor x(Shape{1, c, 16, 16});
  Tensor w(Shape{c, c, 3, 3});
  rng.fill_normal(x.data());
  rng.fill_normal(w.data());
  const Tensor y = ops::conv2d_forward(x, w, nullptr, 1, 1);
  Tensor gy(y.shape(), 1.0F);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops::conv2d_backward(x, w, false, 1, 1, gy));
  }
}
BENCHMARK(BM_Conv2dBackward)->Arg(4)->Arg(8);

/// The paper's cost argument: NTK proxy cost vs batch size.
void BM_NtkConditionVsBatch(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  Rng data_rng(3);
  Tensor probe(Shape{batch, 3, 8, 8});
  data_rng.fill_normal(probe.data());
  const nb201::Genotype g = nb201::Genotype::from_index(14000);
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ntk_condition(g, cfg, probe, rng).condition_number);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_NtkConditionVsBatch)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_LinearRegionCount(benchmark::State& state) {
  const int grid = static_cast<int>(state.range(0));
  CellNetConfig cfg;
  cfg.input_size = 8;
  cfg.base_channels = 4;
  LinearRegionOptions opts;
  opts.grid = grid;
  const nb201::Genotype g = nb201::Genotype::from_index(14000);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_linear_regions(g, cfg, rng, opts).region_count);
  }
}
BENCHMARK(BM_LinearRegionCount)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_SymEig(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(6);
  std::vector<std::vector<float>> rows(static_cast<std::size_t>(n));
  for (auto& r : rows) {
    r.resize(static_cast<std::size_t>(n) * 4);
    rng.fill_normal(r);
  }
  const Matrix gram = gram_matrix(rows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sym_eig(gram).eigenvalues);
  }
}
BENCHMARK(BM_SymEig)->Arg(16)->Arg(32)->Arg(64);

void BM_LatencyEstimate(benchmark::State& state) {
  Rng rng(7);
  ProfilerOptions opts;
  opts.deterministic = true;
  LatencyTable table = build_latency_table(McuSpec{}, rng, MacroNetConfig{}, opts);
  const LatencyEstimator est(std::move(table),
                             profile_constant_overhead_ms(McuSpec{}, rng, opts));
  const MacroModel m = build_macro_model(nb201::Genotype::from_index(9999));
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.estimate_ms(m));
  }
}
BENCHMARK(BM_LatencyEstimate);

void BM_McuSimulate(benchmark::State& state) {
  const MacroModel m = build_macro_model(nb201::Genotype::from_index(9999));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simulate_network(m).latency_ms);
  }
}
BENCHMARK(BM_McuSimulate);

void BM_SurrogateAccuracy(benchmark::State& state) {
  const nb201::SurrogateOracle oracle;
  int idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.accuracy(nb201::Genotype::from_index(idx % 15625),
                                             nb201::Dataset::kCifar10));
    ++idx;
  }
}
BENCHMARK(BM_SurrogateAccuracy);

void BM_MacroModelBuild(benchmark::State& state) {
  int idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_macro_model(nb201::Genotype::from_index(idx % 15625)).layers.size());
    ++idx;
  }
}
BENCHMARK(BM_MacroModelBuild);

void BM_SyntheticBatch(benchmark::State& state) {
  Rng rng(8);
  SyntheticDataset ds(dataset_spec(nb201::Dataset::kCifar10), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ds.sample_batch_resized(32, 16, rng).images.numel());
  }
}
BENCHMARK(BM_SyntheticBatch);

}  // namespace
}  // namespace micronas
