// §II.B.2 latency-model validation: "Our latency model was validated as
// accurate, reliable, and simple."
//
// The LUT estimator (profiled per-op, summed, plus constant overhead)
// is validated against end-to-end MCU-simulator measurements over a
// random architecture sample: MAPE, rank correlation, and worst-case
// error. The estimator deliberately misses the simulator's cross-layer
// SRAM-pressure term — the residual error quantifies that model gap,
// playing the role of the board-vs-model gap in the paper.
#include "bench/bench_common.hpp"
#include "src/stats/correlation.hpp"
#include "src/stats/summary.hpp"

namespace micronas {
namespace {

constexpr int kSample = 150;

int run() {
  bench::print_header("Latency estimator validation vs MCU simulator");

  bench::Apparatus app(/*seed=*/42, /*batch=*/8);
  const MacroNetConfig deploy;

  Rng arch_rng(5);
  Rng jitter_rng(6);
  const auto sample = nb201::sample_genotypes(arch_rng, kSample);

  std::vector<double> predicted, measured, rel_err;
  int pressured = 0;
  for (const auto& g : sample) {
    const MacroModel m = build_macro_model(g, deploy);
    const double est = app.estimator->estimate_ms(m);
    const double sim = measure_latency_ms(m, app.mcu, jitter_rng);
    predicted.push_back(est);
    measured.push_back(sim);
    rel_err.push_back(std::abs(est - sim) / sim);
    if (simulate_network(m, app.mcu).sram_pressure) ++pressured;
  }

  const auto err = stats::summarize(rel_err);
  TablePrinter table({"Metric", "Value"});
  table.add_row({"Architectures", TablePrinter::fmt_int(kSample)});
  table.add_row({"MAPE", TablePrinter::fmt(stats::mape(predicted, measured) * 100.0, 2) + " %"});
  table.add_row({"Median rel. error", TablePrinter::fmt(err.median * 100.0, 2) + " %"});
  table.add_row({"Max rel. error", TablePrinter::fmt(err.max * 100.0, 2) + " %"});
  table.add_row({"Spearman rho", TablePrinter::fmt(stats::spearman_rho(predicted, measured), 4)});
  table.add_row({"Kendall tau", TablePrinter::fmt(stats::kendall_tau(predicted, measured), 4)});
  table.add_row({"SRAM-pressured nets", TablePrinter::fmt_int(pressured)});
  table.add_row({"LUT entries", TablePrinter::fmt_int(static_cast<long long>(
                                    app.estimator->table().size()))});
  table.add_row({"Constant overhead", TablePrinter::fmt(app.estimator->constant_overhead_ms(), 3) + " ms"});
  std::cout << table.render();

  // A few example rows, paper-style.
  TablePrinter ex({"Architecture (index)", "Estimated(ms)", "Measured(ms)", "Error"});
  for (int i = 0; i < 5; ++i) {
    const auto& g = sample[static_cast<std::size_t>(i)];
    ex.add_row({TablePrinter::fmt_int(g.index()), TablePrinter::fmt(predicted[static_cast<std::size_t>(i)], 1),
                TablePrinter::fmt(measured[static_cast<std::size_t>(i)], 1),
                TablePrinter::fmt(rel_err[static_cast<std::size_t>(i)] * 100.0, 2) + " %"});
  }
  std::cout << "\n" << ex.render();

  std::cout << "\nPaper reference: the LUT-based estimator tracks board latency closely enough "
               "to drive the search (validated as accurate and reliable).\n";
  return 0;
}

}  // namespace
}  // namespace micronas

int main() { return micronas::run(); }
