#include "bench/harness.hpp"

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "src/stats/summary.hpp"

namespace micronas::bench {

// ------------------------------------------------------------ statistics

SampleStats compute_stats(std::vector<double> samples) {
  SampleStats s;
  s.count = samples.size();
  if (samples.empty()) return s;
  const stats::Summary summary = stats::summarize(samples);
  s.min = summary.min;
  s.median = summary.median;
  s.mean = summary.mean;
  s.max = summary.max;
  s.stddev = summary.stddev;
  s.p90 = stats::percentile(samples, 90.0);
  return s;
}

CaseOptions experiment_opts(int tier) {
  CaseOptions opts;
  opts.warmup = 0;
  opts.min_reps = 1;
  opts.max_reps = 1;
  opts.steady_rsd = 0.0;
  opts.tier = tier;
  return opts;
}

// ------------------------------------------------------------------ state

namespace {

double wall_now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double cpu_now_ms() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
  timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  return static_cast<double>(std::clock()) * 1e3 / CLOCKS_PER_SEC;
}

bool sample_is_steady(const std::vector<double>& samples, double rsd_threshold) {
  if (rsd_threshold <= 0.0 || samples.size() < 2) return false;
  const SampleStats s = compute_stats(samples);
  return s.mean > 0.0 && (s.stddev / s.mean) < rsd_threshold;
}

}  // namespace

bool State::keep_running() {
  const double wall = wall_now_ms();
  const double cpu = cpu_now_ms();
  if (started_) {
    // Close out the iteration that just finished.
    if (iteration_ >= options_.warmup) {
      wall_ms_.push_back(wall - wall_start_);
      cpu_ms_.push_back(cpu - cpu_start_);
    }
    ++iteration_;
  } else {
    started_ = true;
  }

  const int measured = static_cast<int>(wall_ms_.size());
  if (measured >= options_.max_reps) return false;
  if (measured >= options_.min_reps && sample_is_steady(wall_ms_, options_.steady_rsd)) {
    return false;
  }

  wall_start_ = wall_now_ms();
  cpu_start_ = cpu_now_ms();
  return true;
}

int State::param_int(const std::string& name, int fallback) {
  const std::string raw = param_string(name, std::to_string(fallback));
  try {
    return std::stoi(raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("bench param --set " + name + "=" + raw + ": not an int");
  }
}

double State::param_double(const std::string& name, double fallback) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", fallback);
  const std::string raw = param_string(name, buf);
  try {
    return std::stod(raw);
  } catch (const std::exception&) {
    throw std::invalid_argument("bench param --set " + name + "=" + raw + ": not a number");
  }
}

std::string State::param_string(const std::string& name, const std::string& fallback) {
  std::string value = fallback;
  if (overrides_ != nullptr) {
    auto it = overrides_->find(name);
    if (it != overrides_->end()) value = it->second;
  }
  params_[name] = value;
  return value;
}

void State::record_param(const std::string& name, const std::string& value) {
  params_[name] = value;
}

void State::set_items_processed(double items_per_iteration) {
  items_per_iteration_ = items_per_iteration;
}

void State::set_bytes_processed(double bytes_per_iteration) {
  bytes_per_iteration_ = bytes_per_iteration;
}

void State::counter(const std::string& name, double value) { counters_[name] = value; }

// --------------------------------------------------------------- registry

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

void Registry::add(CaseInfo info) { cases_.push_back(std::move(info)); }

std::vector<CaseInfo> Registry::sorted_cases() const {
  std::vector<CaseInfo> sorted = cases_;
  std::sort(sorted.begin(), sorted.end(), [](const CaseInfo& a, const CaseInfo& b) {
    return a.full_name() < b.full_name();
  });
  return sorted;
}

Registrar::Registrar(const char* suite, const char* name, CaseFn fn, CaseOptions options,
                     std::vector<std::int64_t> args) {
  if (args.empty()) {
    Registry::instance().add(CaseInfo{suite, name, fn, options, 0});
    return;
  }
  for (std::int64_t arg : args) {
    Registry::instance().add(
        CaseInfo{suite, std::string(name) + "/" + std::to_string(arg), fn, options, arg});
  }
}

// ----------------------------------------------------------------- report

BuildInfo current_build_info() {
  BuildInfo info;
#ifdef MICRONAS_GIT_SHA
  info.git_sha = MICRONAS_GIT_SHA;
#else
  info.git_sha = "unknown";
#endif
#ifdef MICRONAS_COMPILER
  info.compiler = MICRONAS_COMPILER;
#else
  info.compiler = "unknown";
#endif
#ifdef MICRONAS_CXX_FLAGS
  info.flags = MICRONAS_CXX_FLAGS;
#else
  info.flags = "";
#endif
#ifdef MICRONAS_BUILD_TYPE
  info.build_type = MICRONAS_BUILD_TYPE;
#else
  info.build_type = "";
#endif
  info.hardware_threads = static_cast<int>(std::thread::hardware_concurrency());

  const std::time_t now = std::time(nullptr);
  char buf[32];
  std::tm tm_utc{};
  gmtime_r(&now, &tm_utc);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  info.timestamp_utc = buf;
  return info;
}

namespace {

// NaN/Inf serialize as JSON null (bench/json.cpp); read them back as
// the fallback instead of throwing so one bad counter cannot make a
// whole telemetry document unreadable.
double number_or(const Json& j, double fallback) {
  return j.is_null() ? fallback : j.as_number();
}

Json stats_to_json(const SampleStats& s) {
  JsonObject o;
  o["min"] = s.min;
  o["median"] = s.median;
  o["mean"] = s.mean;
  o["p90"] = s.p90;
  o["max"] = s.max;
  o["stddev"] = s.stddev;
  return Json(std::move(o));
}

SampleStats stats_from_json(const Json& j, std::size_t count) {
  SampleStats s;
  s.count = count;
  s.min = number_or(j.at("min"), 0.0);
  s.median = number_or(j.at("median"), 0.0);
  s.mean = number_or(j.at("mean"), 0.0);
  s.p90 = number_or(j.at("p90"), 0.0);
  s.max = number_or(j.at("max"), 0.0);
  s.stddev = number_or(j.at("stddev"), 0.0);
  return s;
}

}  // namespace

Json Report::to_json() const {
  JsonObject doc;
  doc["schema_version"] = 1;

  JsonObject b;
  b["git_sha"] = build.git_sha;
  b["compiler"] = build.compiler;
  b["flags"] = build.flags;
  b["build_type"] = build.build_type;
  b["hardware_threads"] = build.hardware_threads;
  b["timestamp_utc"] = build.timestamp_utc;
  doc["build"] = Json(std::move(b));

  JsonArray arr;
  for (const CaseResult& c : cases) {
    JsonObject o;
    o["suite"] = c.suite;
    o["case"] = c.name;
    o["tier"] = c.tier;
    JsonObject params;
    for (const auto& [k, v] : c.params) params[k] = v;
    o["params"] = Json(std::move(params));

    JsonObject stats;
    stats["repetitions"] = c.wall_ms.count;
    stats["warmup"] = c.warmup;
    stats["wall_ms"] = stats_to_json(c.wall_ms);
    stats["cpu_ms"] = stats_to_json(c.cpu_ms);
    o["stats"] = Json(std::move(stats));

    if (c.items_per_second > 0.0) o["items_per_second"] = c.items_per_second;
    if (c.bytes_per_second > 0.0) o["bytes_per_second"] = c.bytes_per_second;
    if (!c.counters.empty()) {
      JsonObject counters;
      for (const auto& [k, v] : c.counters) counters[k] = v;
      o["counters"] = Json(std::move(counters));
    }
    arr.push_back(Json(std::move(o)));
  }
  doc["cases"] = Json(std::move(arr));
  return Json(std::move(doc));
}

Report Report::from_json(const Json& doc) {
  const double version = doc.at("schema_version").as_number();
  if (version != 1) {
    throw std::runtime_error("unsupported BENCH json schema_version " + std::to_string(version));
  }
  Report report;
  const Json& b = doc.at("build");
  report.build.git_sha = b.at("git_sha").as_string();
  report.build.compiler = b.at("compiler").as_string();
  report.build.flags = b.at("flags").as_string();
  report.build.build_type = b.at("build_type").as_string();
  report.build.hardware_threads = static_cast<int>(b.at("hardware_threads").as_number());
  report.build.timestamp_utc = b.at("timestamp_utc").as_string();

  for (const Json& j : doc.at("cases").as_array()) {
    CaseResult c;
    c.suite = j.at("suite").as_string();
    c.name = j.at("case").as_string();
    c.tier = static_cast<int>(j.at("tier").as_number());
    for (const auto& [k, v] : j.at("params").as_object()) c.params[k] = v.as_string();

    const Json& stats = j.at("stats");
    const auto reps = static_cast<std::size_t>(stats.at("repetitions").as_number());
    c.warmup = static_cast<int>(stats.at("warmup").as_number());
    c.wall_ms = stats_from_json(stats.at("wall_ms"), reps);
    c.cpu_ms = stats_from_json(stats.at("cpu_ms"), reps);

    if (const Json* ips = j.find("items_per_second")) c.items_per_second = number_or(*ips, 0.0);
    if (const Json* bps = j.find("bytes_per_second")) c.bytes_per_second = number_or(*bps, 0.0);
    if (const Json* counters = j.find("counters")) {
      for (const auto& [k, v] : counters->as_object()) {
        c.counters[k] = number_or(v, std::numeric_limits<double>::quiet_NaN());
      }
    }
    report.cases.push_back(std::move(c));
  }
  return report;
}

void Report::merge(const Report& other) {
  for (const CaseResult& incoming : other.cases) {
    auto it = std::find_if(cases.begin(), cases.end(), [&](const CaseResult& existing) {
      return existing.full_name() == incoming.full_name();
    });
    if (it != cases.end()) {
      *it = incoming;
    } else {
      cases.push_back(incoming);
    }
  }
  std::sort(cases.begin(), cases.end(), [](const CaseResult& a, const CaseResult& b) {
    return a.full_name() < b.full_name();
  });
}

// ----------------------------------------------------------------- runner

CaseOptions Runner::effective_options(const CaseOptions& c) const {
  CaseOptions e = c;
  if (e.warmup < 0) e.warmup = options_.warmup;
  if (e.min_reps < 0) e.min_reps = options_.min_reps;
  if (e.max_reps < 0) e.max_reps = options_.max_reps;
  if (e.steady_rsd < 0.0) e.steady_rsd = options_.steady_rsd;
  e.min_reps = std::max(1, e.min_reps);
  e.max_reps = std::max(e.min_reps, e.max_reps);
  return e;
}

std::vector<CaseInfo> Runner::selection() const {
  std::vector<CaseInfo> selected;
  for (const CaseInfo& info : Registry::instance().sorted_cases()) {
    if (options_.tier != 0 && info.options.tier != options_.tier) continue;
    if (!options_.filter.empty() &&
        info.full_name().find(options_.filter) == std::string::npos) {
      continue;
    }
    selected.push_back(info);
  }
  return selected;
}

Report Runner::run(std::ostream* progress) const {
  Report report;
  report.build = current_build_info();

  for (const CaseInfo& info : selection()) {
    State state;
    state.overrides_ = &options_.overrides;
    state.options_ = effective_options(info.options);
    state.arg_ = info.arg;
    state.verbose_ = options_.verbose;
    if (info.arg != 0) state.record_param("arg", std::to_string(info.arg));

    if (progress != nullptr) {
      *progress << "[bench] " << info.full_name() << " ..." << std::flush;
    }
    info.fn(state);

    CaseResult result;
    result.suite = info.suite;
    result.name = info.name;
    result.tier = info.options.tier;
    result.params = state.params_;
    result.warmup = state.options_.warmup;
    result.wall_ms = compute_stats(state.wall_ms_);
    result.cpu_ms = compute_stats(state.cpu_ms_);
    result.counters = state.counters_;
    if (result.wall_ms.median > 0.0) {
      if (state.items_per_iteration_ > 0.0) {
        result.items_per_second = state.items_per_iteration_ / (result.wall_ms.median * 1e-3);
      }
      if (state.bytes_per_iteration_ > 0.0) {
        result.bytes_per_second = state.bytes_per_iteration_ / (result.wall_ms.median * 1e-3);
      }
    }
    if (progress != nullptr) {
      char line[160];
      std::snprintf(line, sizeof(line), " median %.3f ms (n=%zu, p90 %.3f, stddev %.3f)",
                    result.wall_ms.median, result.wall_ms.count, result.wall_ms.p90,
                    result.wall_ms.stddev);
      *progress << line << "\n";
    }
    report.cases.push_back(std::move(result));
  }
  return report;
}

}  // namespace micronas::bench
