// bench_compare — perf-regression gate over two BENCH_*.json documents.
//
//   bench_compare <baseline.json> <current.json> [--threshold 0.25]
//                 [--counter-threshold 0.001] [--allow-missing]
//
// Exit status: 0 when no case regressed (and none missing unless
// --allow-missing), 1 on regression/missing, 2 on usage errors.
#include <iostream>

#include "bench/compare.hpp"
#include "src/common/cli.hpp"

using namespace micronas;
using namespace micronas::bench;

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv, {"threshold", "counter-threshold", "allow-missing"});
    if (args.positional().size() != 2) {
      std::cerr << "usage: " << args.program()
                << " <baseline.json> <current.json> [--threshold 0.25] "
                   "[--counter-threshold 0.001] [--allow-missing]\n";
      return 2;
    }

    CompareOptions opts;
    opts.threshold = args.get_double("threshold", opts.threshold);
    // Counters are near-deterministic scientific results (arena bytes,
    // reuse factors); the memory lane gates them ~250x tighter than
    // wall-time medians. 0 keeps counter gating off.
    opts.counter_threshold = args.get_double("counter-threshold", opts.counter_threshold);
    opts.allow_missing = args.get_bool("allow-missing", false);
    if (opts.threshold <= 0.0) {
      std::cerr << "error: --threshold must be > 0\n";
      return 2;
    }

    const Report baseline = Report::from_json(load_json_file(args.positional()[0]));
    const Report current = Report::from_json(load_json_file(args.positional()[1]));

    // Absolute wall times only compare meaningfully on like-for-like
    // builds; surface toolchain/build-type drift loudly.
    if (baseline.build.compiler != current.build.compiler ||
        baseline.build.build_type != current.build.build_type) {
      std::cerr << "warning: build mismatch — baseline {" << baseline.build.compiler << ", "
                << baseline.build.build_type << "} vs current {" << current.build.compiler
                << ", " << current.build.build_type
                << "}; medians reflect the toolchain as much as the code. Regenerate the "
                   "baseline with scripts/update_baselines.sh on this setup.\n";
    }

    const CompareResult result = compare_reports(baseline, current, opts);
    std::cout << render_comparison(result, opts);
    return result.failed(opts) ? 1 : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
